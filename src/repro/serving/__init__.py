"""Multi-tenant traffic serving over the analytic NPU models.

The two-task figures (14/15) answer "how do two co-resident tasks
interfere?"; this package answers the production question behind
§IV-B's SLA dilemma: given a *stream* of requests from secure- and
normal-world tenants, what latency distribution does each isolation
mechanism deliver?  A seeded workload generator produces deterministic
arrival streams (:mod:`repro.serving.workload`), pluggable dispatch
policies pick what runs next (:mod:`repro.serving.policies`), the
simulator serves the stream under a chosen mechanism
(:mod:`repro.serving.queueing`) and the report renders per-tenant
p50/p95/p99 + SLA attainment (:mod:`repro.serving.report`).

CLI: ``repro serve <scenario> --mechanism snpu --rps 240 --duration 400``.
"""

from repro.serving.live import ServeWindows
from repro.serving.policies import POLICIES, Policy
from repro.serving.queueing import (
    MECHANISMS,
    CompletedRequest,
    RateOracle,
    ServeOutcome,
    ServeSimulator,
)
from repro.serving.report import ServeReport, TenantReport, nearest_rank
from repro.serving.workload import (
    SCENARIOS,
    Request,
    Scenario,
    TenantSpec,
    build_model,
    generate,
)

__all__ = [
    "POLICIES",
    "Policy",
    "MECHANISMS",
    "CompletedRequest",
    "RateOracle",
    "ServeOutcome",
    "ServeSimulator",
    "ServeWindows",
    "ServeReport",
    "TenantReport",
    "nearest_rank",
    "SCENARIOS",
    "Request",
    "Scenario",
    "TenantSpec",
    "build_model",
    "generate",
]
