"""Multi-tenant traffic serving over the analytic NPU models.

The two-task figures (14/15) answer "how do two co-resident tasks
interfere?"; this package answers the production question behind
§IV-B's SLA dilemma: given a *stream* of requests from secure- and
normal-world tenants, what latency distribution does each isolation
mechanism deliver?  A seeded workload generator produces deterministic
arrival streams (:mod:`repro.serving.workload`), pluggable dispatch
policies pick what runs next (:mod:`repro.serving.policies`), the
simulator serves the stream under a chosen mechanism
(:mod:`repro.serving.queueing`) and the report renders per-tenant
p50/p95/p99 + SLA attainment (:mod:`repro.serving.report`).  A sharded
multi-NPU cluster layer (:mod:`repro.serving.cluster`) scales the same
machinery to millions of requests: fluid totals, a seed-stable detailed
sample per worker, reconciliation between the two, and autoscaling.

CLI: ``repro serve <scenario> --mechanism snpu --rps 240 --duration 400``
or ``repro serve <scenario> --workers 8 --requests 1e6``.
"""

from repro.serving.cluster import (
    CLUSTER_POLICIES,
    AutoscaleStep,
    ClusterReport,
    ClusterSimulator,
    Stream,
    WorkerFluid,
    assign_streams,
    autoscale,
    build_streams,
    worker_scenario,
)
from repro.serving.live import ServeWindows
from repro.serving.policies import POLICIES, Policy
from repro.serving.queueing import (
    MECHANISMS,
    CompletedRequest,
    RateOracle,
    ServeOutcome,
    ServeSimulator,
)
from repro.serving.report import ServeReport, TenantReport, nearest_rank
from repro.serving.workload import (
    SCENARIOS,
    Request,
    Scenario,
    TenantSpec,
    build_model,
    generate,
)

__all__ = [
    "CLUSTER_POLICIES",
    "AutoscaleStep",
    "ClusterReport",
    "ClusterSimulator",
    "Stream",
    "WorkerFluid",
    "assign_streams",
    "autoscale",
    "build_streams",
    "worker_scenario",
    "POLICIES",
    "Policy",
    "MECHANISMS",
    "CompletedRequest",
    "RateOracle",
    "ServeOutcome",
    "ServeSimulator",
    "ServeWindows",
    "ServeReport",
    "TenantReport",
    "nearest_rank",
    "SCENARIOS",
    "Request",
    "Scenario",
    "TenantSpec",
    "build_model",
    "generate",
]
