"""Per-tenant SLA reporting for one serving run.

Percentiles use the nearest-rank method (the value at ceil(p/100 * n),
1-indexed, of the sorted sample) — exact, deterministic, and never an
interpolated value that no request actually experienced.  A tenant with
**zero completed requests** reports ``None`` percentiles and an
explicit ``0/0`` SLA (``sla_attainment=None``) — never a fabricated
0.0 ms latency or a vacuous 100% attainment.  ``to_dict`` contains only
quantities derived from the seeded simulation (no wall-clock, no
environment), and ``render("json")`` dumps it with sorted keys — so the
same ``--seed`` produces bit-identical JSON on every run, which the CI
smoke job and the determinism test both rely on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.serving.queueing import CompletedRequest, ServeOutcome
from repro.serving.workload import Scenario


def nearest_rank(sorted_values: List[float], pct: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending-sorted sample.

    An empty sample has no percentile: returns None (a caller that wants
    a sentinel picks its own — 0.0 here would masquerade as a latency)."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class TenantReport:
    """Latency/SLA statistics of one tenant (or the aggregate)."""

    tenant: str
    world: str
    sla_ms: Optional[float]
    n: int
    #: All None when the tenant completed nothing (0/0 SLA, no sample).
    mean_ms: Optional[float]
    p50_ms: Optional[float]
    p95_ms: Optional[float]
    p99_ms: Optional[float]
    max_ms: Optional[float]
    sla_attainment: Optional[float]
    mean_wait_ms: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "world": self.world,
            "sla_ms": self.sla_ms,
            "n": self.n,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
            "sla_attainment": self.sla_attainment,
            "mean_wait_ms": self.mean_wait_ms,
        }


def tenant_stats(
    name: str,
    world: str,
    sla_ms: Optional[float],
    completed: List[CompletedRequest],
    cycles_per_ms: float,
) -> TenantReport:
    latencies = sorted(c.latency for c in completed)
    n = len(latencies)
    if n == 0:
        # 0 completions: there is no latency distribution to summarise
        # and 0-of-0 SLA attainment is undefined, not 100%.
        return TenantReport(
            tenant=name, world=world, sla_ms=sla_ms, n=0,
            mean_ms=None, p50_ms=None, p95_ms=None, p99_ms=None,
            max_ms=None, sla_attainment=None, mean_wait_ms=None,
        )
    mean = sum(latencies) / n
    mean_wait = sum(c.wait for c in completed) / n
    ok = sum(1 for c in completed if c.sla_ok)
    p50 = nearest_rank(latencies, 50.0)
    p95 = nearest_rank(latencies, 95.0)
    p99 = nearest_rank(latencies, 99.0)
    assert p50 is not None and p95 is not None and p99 is not None
    return TenantReport(
        tenant=name,
        world=world,
        sla_ms=sla_ms,
        n=n,
        mean_ms=mean / cycles_per_ms,
        p50_ms=p50 / cycles_per_ms,
        p95_ms=p95 / cycles_per_ms,
        p99_ms=p99 / cycles_per_ms,
        max_ms=latencies[-1] / cycles_per_ms,
        sla_attainment=ok / n,
        mean_wait_ms=mean_wait / cycles_per_ms,
    )


@dataclass
class ServeReport:
    """The full SLA report: per-tenant stats + overhead decomposition."""

    outcome: ServeOutcome
    tenants: List[TenantReport]
    aggregate: TenantReport
    flush_share: float
    world_share: float
    makespan_ms: float

    @classmethod
    def build(
        cls, outcome: ServeOutcome, scenario: Optional[Scenario] = None
    ) -> "ServeReport":
        cycles_per_ms = outcome.freq_ghz * 1e6
        by_tenant: Dict[str, List[CompletedRequest]] = {}
        worlds: Dict[str, str] = {}
        slas: Dict[str, Optional[float]] = {}
        if scenario is not None:
            # Seed the tenant set from the scenario so a tenant that
            # completed *nothing* still appears (n=0, null percentiles)
            # instead of silently vanishing from the report.
            for spec in scenario.tenants:
                by_tenant[spec.name] = []
                worlds[spec.name] = spec.world
                slas[spec.name] = spec.sla_ms
        for comp in outcome.completed:
            by_tenant.setdefault(comp.request.tenant, []).append(comp)
            worlds[comp.request.tenant] = comp.request.world
            slas[comp.request.tenant] = (
                comp.request.sla_cycles / cycles_per_ms
            )
        tenants = [
            tenant_stats(
                name, worlds[name], slas[name], by_tenant[name], cycles_per_ms
            )
            for name in sorted(by_tenant)
        ]
        aggregate = tenant_stats(
            "all", "-", None, outcome.completed, cycles_per_ms
        )
        busy = outcome.busy_cycles
        return cls(
            outcome=outcome,
            tenants=tenants,
            aggregate=aggregate,
            flush_share=(outcome.flush_cycles / busy) if busy else 0.0,
            world_share=(outcome.world_cycles / busy) if busy else 0.0,
            makespan_ms=outcome.makespan / cycles_per_ms,
        )

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.tenant == name:
                return report
        raise KeyError(name)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out = self.outcome
        return {
            "scenario": out.scenario,
            "mechanism": out.mechanism,
            "policy": out.policy,
            "rps": out.rps,
            "duration_ms": out.duration_ms,
            "seed": out.seed,
            "completed": len(out.completed),
            "makespan_ms": self.makespan_ms,
            "overheads": {
                "flushes": out.flushes,
                "flush_cycles": out.flush_cycles,
                "flush_share": self.flush_share,
                "world_switches": out.world_switches,
                "world_cycles": out.world_cycles,
                "world_switch_share": self.world_share,
            },
            "accounting": {
                "wait_clamps": out.wait_clamps,
                "clamped_cycles": out.clamped_cycles,
            },
            "tenants": {t.tenant: t.to_dict() for t in self.tenants},
            "aggregate": self.aggregate.to_dict(),
            **(
                {"windows": out.windows.to_dict()}
                if out.windows is not None else {}
            ),
        }

    def render(self, fmt: str = "table") -> str:
        if fmt == "json":
            return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        return self._render_table()

    def _render_table(self) -> str:
        out = self.outcome
        lines = [
            f"== serve: scenario={out.scenario} mechanism={out.mechanism} "
            f"policy={out.policy} rps={out.rps:g} "
            f"duration={out.duration_ms:g}ms seed={out.seed} =="
        ]
        columns = ("tenant", "world", "sla_ms", "n", "p50_ms", "p95_ms",
                   "p99_ms", "sla%", "wait_ms")
        def fmt(value: Optional[float], spec: str) -> str:
            return "-" if value is None else format(value, spec)

        rows = []
        for report in self.tenants + [self.aggregate]:
            rows.append((
                report.tenant,
                report.world,
                fmt(report.sla_ms, ".1f"),
                str(report.n),
                fmt(report.p50_ms, ".3f"),
                fmt(report.p95_ms, ".3f"),
                fmt(report.p99_ms, ".3f"),
                fmt(report.sla_attainment, ".1%"),
                fmt(report.mean_wait_ms, ".3f"),
            ))
        widths = [
            max(len(columns[i]), max(len(row[i]) for row in rows))
            for i in range(len(columns))
        ]
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        lines.append(
            f"overheads: {out.flushes} flushes "
            f"({self.flush_share:.2%} of busy cycles), "
            f"{out.world_switches} world switches "
            f"({self.world_share:.2%}); makespan {self.makespan_ms:.1f} ms"
        )
        if out.wait_clamps:
            lines.append(
                f"accounting: {out.wait_clamps} wait residuals clamped "
                f"({out.clamped_cycles:.3g} cycles of float noise)"
            )
        return "\n".join(lines) + "\n"


def diff_tenant_reports(
    a: "ServeReport", b: "ServeReport"
) -> List[Dict[str, Any]]:
    """Per-tenant p99/SLA deltas between two serve reports.

    None-safe: a tenant with no completions on one side keeps its None
    percentiles and reports a None delta — a fabricated 0.0 ms baseline
    would invert the sign of every comparison against it.  Rows are
    sorted by tenant name; only tenants present in at least one report
    appear.
    """
    names = sorted(
        {t.tenant for t in a.tenants} | {t.tenant for t in b.tenants}
    )

    def lookup(report: "ServeReport", name: str) -> Optional[TenantReport]:
        try:
            return report.tenant(name)
        except KeyError:
            return None

    def delta(x: Optional[float], y: Optional[float]) -> Optional[float]:
        if x is None or y is None:
            return None
        return y - x

    rows: List[Dict[str, Any]] = []
    for name in names:
        ta, tb = lookup(a, name), lookup(b, name)
        p99_a = ta.p99_ms if ta else None
        p99_b = tb.p99_ms if tb else None
        sla_a = ta.sla_attainment if ta else None
        sla_b = tb.sla_attainment if tb else None
        rows.append({
            "tenant": name,
            "n_a": ta.n if ta else 0,
            "n_b": tb.n if tb else 0,
            "p99_ms_a": p99_a,
            "p99_ms_b": p99_b,
            "p99_ms_delta": delta(p99_a, p99_b),
            "sla_a": sla_a,
            "sla_b": sla_b,
            "sla_delta": delta(sla_a, sla_b),
        })
    return rows
