"""Sharded multi-NPU cluster serving (ROADMAP item 2).

One NPU answers §IV-B's dilemma for one device; production serves
millions of requests across a *fleet*.  This module puts N single-NPU
workers (each an unmodified :class:`ServeSimulator`) behind a cluster
scheduler with pluggable load-balancing policies:

* ``rr`` — every (tenant, model) stream is split evenly across all
  workers; the cluster behaves like N clones of the scenario.
* ``least-loaded`` — streams are water-filled onto workers so every
  worker carries the same aggregate rate, splitting streams only when
  needed.
* ``tenant-affinity`` — whole tenants are packed LPT-greedy onto the
  least-loaded worker, amortizing secure-world setup (a worker that
  never mixes worlds never pays a world switch).
* ``model-affinity`` — whole model streams are packed LPT-greedy,
  amortizing weight residency.

**Fluid + sampled-detailed split.**  Serving ``--requests 1e6`` by
simulating every request would take hours; instead the cluster runs a
*fluid* approximation over the full horizon (per-worker utilization and
an M/M/1-style latency estimate from the analytic per-model service
cycles) and routes a deterministic, seed-stable *sample* — the first
``detail_ms`` of every worker's stream — through the detailed per-NPU
path, flow tracker, audit ledger and all.  A reconciliation pass then
checks that the sampled detailed results and the fluid totals agree
within declared bounds (Poisson noise on rates, a 35 % band on
per-request service accounting, a floor and a 10x ceiling on mean
latency) and raises
:class:`ReconciliationError` when they diverge — the fluid numbers are
only trustworthy while the detailed sample vouches for them.

**Autoscaling.**  :func:`autoscale` grows the fleet from
``min_workers`` until every tenant's pooled p99 meets its SLA at the
target attainment, doubling while attainment is catastrophic and
stepping by one near the knee — the same p99/SLA signals
``serving.report`` already emits, consumed at cluster level.

Determinism: worker ``w`` serves a derived scenario named
``f"{scenario.name}#w{w}"`` — the workload generator's string seeding
makes every worker's stream independent and platform-stable, and
assignment iterates streams in sorted order, so the report bytes depend
only on (scenario, mechanism, policy, balance, workers, seed), never on
policy-internal iteration order.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.driver.scheduler import MultiTaskScheduler
from repro.errors import ConfigError, ReconciliationError
from repro.npu.config import NPUConfig
from repro.serving.queueing import (
    MECHANISMS,
    CompletedRequest,
    RateOracle,
    ServeSimulator,
)
from repro.serving.report import ServeReport, TenantReport, tenant_stats
from repro.serving.workload import Scenario, build_model

CLUSTER_POLICIES = ("rr", "least-loaded", "tenant-affinity", "model-affinity")

#: Default length (ms) of the detailed sample routed through the
#: per-NPU path on every worker.  2000 ms matches the paper-profile
#: single-NPU horizon, so the pooled percentiles carry the same
#: statistical weight as the committed serve-sweep goldens.
DEFAULT_DETAIL_MS = 2000.0

_RATE_EPS = 1e-12


@dataclass(frozen=True)
class Stream:
    """One (tenant, model) arrival stream and its share of cluster rps."""

    tenant: str
    model: str
    rate: float  # fraction of the cluster's aggregate rps


def build_streams(scenario: Scenario) -> List[Stream]:
    """Expand *scenario* into per-(tenant, model) rate fractions."""
    streams: List[Stream] = []
    for spec in scenario.tenants:
        total_w = sum(w for _, w in spec.models)
        for model, w in spec.models:
            streams.append(Stream(spec.name, model, spec.share * w / total_w))
    return streams


Assignment = List[Dict[str, Dict[str, float]]]  # worker -> tenant -> model -> rate


def assign_streams(
    streams: List[Stream], workers: int, balance: str
) -> Assignment:
    """Distribute *streams* over *workers* under one balancing policy.

    Returns ``assignment[w][tenant][model] = rate fraction``.  Input
    order never matters: streams are re-sorted internally, so two
    callers holding the same stream set in different orders produce
    identical assignments (the determinism contract the property tests
    pin down).
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if balance not in CLUSTER_POLICIES:
        raise ConfigError(
            f"unknown balance policy {balance!r}; choose from "
            f"{', '.join(CLUSTER_POLICIES)}"
        )
    assignment: Assignment = [{} for _ in range(workers)]

    def add(widx: int, stream: Stream, rate: float) -> None:
        if rate <= _RATE_EPS:
            return
        tenant = assignment[widx].setdefault(stream.tenant, {})
        tenant[stream.model] = tenant.get(stream.model, 0.0) + rate

    ordered = sorted(streams, key=lambda s: (s.tenant, s.model))
    if balance == "rr":
        for stream in ordered:
            for w in range(workers):
                add(w, stream, stream.rate / workers)
        return assignment
    if balance == "least-loaded":
        # Water-filling: largest streams first, each poured into the
        # least-loaded worker up to the even-split target, splitting a
        # stream only when it overflows the target.
        target = sum(s.rate for s in ordered) / workers
        loads = [0.0] * workers
        for stream in sorted(
            ordered, key=lambda s: (-s.rate, s.tenant, s.model)
        ):
            remaining = stream.rate
            while remaining > _RATE_EPS:
                w = min(range(workers), key=lambda i: (loads[i], i))
                room = target - loads[w]
                take = remaining if room <= _RATE_EPS else min(remaining, room)
                add(w, stream, take)
                loads[w] += take
                remaining -= take
        return assignment
    # Affinity policies: group streams, then LPT-greedy whole groups
    # onto the least-loaded worker (no splitting — that is the point).
    key = (lambda s: s.tenant) if balance == "tenant-affinity" else (
        lambda s: s.model
    )
    groups: Dict[str, List[Stream]] = {}
    for stream in ordered:
        groups.setdefault(key(stream), []).append(stream)
    loads = [0.0] * workers
    for name in sorted(
        groups, key=lambda g: (-sum(s.rate for s in groups[g]), g)
    ):
        w = min(range(workers), key=lambda i: (loads[i], i))
        for stream in groups[name]:
            add(w, stream, stream.rate)
        loads[w] += sum(s.rate for s in groups[name])
    return assignment


def worker_scenario(
    scenario: Scenario, idx: int, assigned: Dict[str, Dict[str, float]]
) -> Optional[Scenario]:
    """Derive worker *idx*'s scenario from its stream assignment.

    Tenant shares are renormalized to the worker's aggregate rate (the
    last share absorbs float drift so they sum to exactly 1) and each
    tenant's model mix is restricted to the models routed here, weighted
    by assigned rate.  Returns None for a worker with no streams.
    """
    names = [t.name for t in scenario.tenants if assigned.get(t.name)]
    if not names:
        return None
    worker_rate = sum(sum(m.values()) for m in assigned.values())
    shares = [
        sum(assigned[name].values()) / worker_rate for name in names
    ]
    shares[-1] = 1.0 - sum(shares[:-1])
    tenants = []
    for name, share in zip(names, shares):
        spec = scenario.tenant(name)
        models = tuple(
            (model, assigned[name][model])
            for model, _ in spec.models
            if model in assigned[name]
        )
        tenants.append(replace(spec, models=models, share=share))
    return Scenario(
        name=f"{scenario.name}#w{idx}",
        description=f"worker {idx} shard of {scenario.name}",
        tenants=tuple(tenants),
        rps=worker_rate,
        duration_ms=scenario.duration_ms,
    )


# ----------------------------------------------------------------------
# Fluid approximation
# ----------------------------------------------------------------------
@dataclass
class WorkerFluid:
    """Fluid-model summary of one worker over the full horizon."""

    worker: int
    rate_rps: float
    requests: int
    #: Mix-weighted service cycles per request when the request has the
    #: worker to itself (the accounting rate the detailed path records).
    service_mean_cycles: float
    #: Mix-weighted cycles per request at the *loaded* rate — flushed
    #: quanta for temporal sharing, expected co-run pair time for
    #: spatial (this is what utilization must be charged at; using the
    #: alone rate would overstate a spatial worker's capacity ~2x).
    loaded_mean_cycles: float
    overhead_mean_cycles: float
    utilization: float
    latency_est_ms: Optional[float]  # None when saturated
    saturated: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "rate_rps": self.rate_rps,
            "requests": self.requests,
            "service_mean_cycles": self.service_mean_cycles,
            "loaded_mean_cycles": self.loaded_mean_cycles,
            "overhead_mean_cycles": self.overhead_mean_cycles,
            "utilization": self.utilization,
            "latency_est_ms": self.latency_est_ms,
            "saturated": self.saturated,
        }


def _service_cycles_by_model(
    scheduler: MultiTaskScheduler,
    models: Dict[str, Any],
    mechanism: str,
) -> Tuple[Dict[str, float], Optional[RateOracle]]:
    """Per-model *alone* service cycles + the oracle (spatial only)."""
    if mechanism in ("snpu", "partition"):
        oracle = RateOracle(scheduler, models, mechanism)
        return {key: oracle.alone(key) for key in models}, oracle
    granularity = mechanism.split("-", 1)[1]
    return {
        key: sum(scheduler.quanta(model, granularity, flushed=True))
        for key, model in models.items()
    }, None


def _collision_prob(weights: List[float]) -> float:
    """P(two consecutive draws differ) = 1 - sum p_i^2."""
    total = sum(weights)
    if total <= 0:
        return 0.0
    return 1.0 - sum((w / total) ** 2 for w in weights)


def allocate_requests(total: int, weights: List[float]) -> List[int]:
    """Largest-remainder integer split of *total* proportional to weights."""
    if total <= 0 or sum(weights) <= 0:
        return [0] * len(weights)
    scale = sum(weights)
    exact = [total * w / scale for w in weights]
    base = [int(math.floor(e)) for e in exact]
    order = sorted(
        range(len(weights)), key=lambda i: (-(exact[i] - base[i]), i)
    )
    for i in order[: total - sum(base)]:
        base[i] += 1
    return base


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
@dataclass
class AutoscaleStep:
    """One autoscaler iteration: fleet size, signals, decision."""

    workers: int
    min_attainment: Optional[float]
    worst_p99_over_sla: Optional[float]  # max over tenants of p99/sla
    ok: bool
    decision: str  # "hold" | "double" | "step"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "min_attainment": self.min_attainment,
            "worst_p99_over_sla": self.worst_p99_over_sla,
            "ok": self.ok,
            "decision": self.decision,
        }


# ----------------------------------------------------------------------
# The cluster simulator + report
# ----------------------------------------------------------------------
@dataclass
class ClusterReport:
    """Cluster-level SLA report: fluid totals + pooled detailed stats."""

    scenario: str
    mechanism: str
    policy: str
    balance: str
    workers: int
    rps: float
    duration_ms: float
    detail_ms: float
    seed: int
    freq_ghz: float
    requests_total: int
    requests_detailed: int
    fluid: List[WorkerFluid]
    worker_reports: List[Optional[ServeReport]]
    tenants: List[TenantReport]
    aggregate: TenantReport
    reconciliation: List[Dict[str, Any]]
    wait_clamps: int
    clamped_cycles: float
    autoscale_steps: List[AutoscaleStep] = field(default_factory=list)

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.tenant == name:
                return report
        raise KeyError(name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "mechanism": self.mechanism,
            "policy": self.policy,
            "balance": self.balance,
            "workers": self.workers,
            "rps": self.rps,
            "duration_ms": self.duration_ms,
            "detail_ms": self.detail_ms,
            "seed": self.seed,
            "requests_total": self.requests_total,
            "requests_detailed": self.requests_detailed,
            "fluid": [f.to_dict() for f in self.fluid],
            "workers_detail": [
                (None if rep is None else rep.to_dict())
                for rep in self.worker_reports
            ],
            "tenants": {t.tenant: t.to_dict() for t in self.tenants},
            "aggregate": self.aggregate.to_dict(),
            "reconciliation": self.reconciliation,
            "accounting": {
                "wait_clamps": self.wait_clamps,
                "clamped_cycles": self.clamped_cycles,
            },
            **(
                {"autoscale": [s.to_dict() for s in self.autoscale_steps]}
                if self.autoscale_steps else {}
            ),
        }

    def render(self, fmt: str = "table") -> str:
        if fmt == "json":
            return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        return self._render_table()

    def _render_table(self) -> str:
        lines = [
            f"== cluster: scenario={self.scenario} "
            f"mechanism={self.mechanism} policy={self.policy} "
            f"balance={self.balance} workers={self.workers} "
            f"rps={self.rps:g} duration={self.duration_ms:g}ms "
            f"seed={self.seed} ==",
            f"fluid: {self.requests_total} requests over the horizon; "
            f"detailed sample: {self.requests_detailed} requests "
            f"({self.detail_ms:g} ms per worker)",
        ]

        def fnum(value: Optional[float], spec: str) -> str:
            return "-" if value is None else format(value, spec)

        columns = ("worker", "rps", "requests", "util", "est_ms")
        rows = []
        for f in self.fluid:
            rows.append((
                f"w{f.worker}",
                f"{f.rate_rps:.1f}",
                str(f.requests),
                f"{f.utilization:.2f}",
                "sat" if f.saturated else fnum(f.latency_est_ms, ".3f"),
            ))
        widths = [
            max(len(columns[i]), max((len(r[i]) for r in rows), default=0))
            for i in range(len(columns))
        ]
        lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))

        lines.append("pooled detailed sample (per tenant):")
        tcols = ("tenant", "world", "sla_ms", "n", "p50_ms", "p95_ms",
                 "p99_ms", "sla%")
        trows = []
        for rep in self.tenants + [self.aggregate]:
            trows.append((
                rep.tenant, rep.world,
                fnum(rep.sla_ms, ".1f"), str(rep.n),
                fnum(rep.p50_ms, ".3f"), fnum(rep.p95_ms, ".3f"),
                fnum(rep.p99_ms, ".3f"),
                fnum(rep.sla_attainment, ".1%"),
            ))
        twidths = [
            max(len(tcols[i]), max((len(r[i]) for r in trows), default=0))
            for i in range(len(tcols))
        ]
        lines.append("  ".join(c.ljust(w) for c, w in zip(tcols, twidths)))
        lines.append("  ".join("-" * w for w in twidths))
        for row in trows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, twidths)))
        worst = max(
            (c["observed"] / c["bound"] for c in self.reconciliation
             if c["bound"]), default=0.0,
        )
        lines.append(
            f"reconciliation: {len(self.reconciliation)} checks passed "
            f"(worst at {worst:.0%} of bound)"
        )
        if self.wait_clamps:
            lines.append(
                f"accounting: {self.wait_clamps} wait residuals clamped "
                f"({self.clamped_cycles:.3g} cycles of float noise)"
            )
        for step in self.autoscale_steps:
            lines.append(
                f"autoscale: workers={step.workers} "
                f"attainment={fnum(step.min_attainment, '.1%')} "
                f"p99/sla={fnum(step.worst_p99_over_sla, '.2f')} "
                f"-> {step.decision}"
            )
        return "\n".join(lines) + "\n"


class ClusterSimulator:
    """Serve one scenario across N workers: fluid totals + sampled detail."""

    def __init__(
        self,
        scenario: Scenario,
        mechanism: str = "snpu",
        policy: str = "rr",
        balance: str = "rr",
        workers: int = 1,
        rps: Optional[float] = None,
        duration_ms: Optional[float] = None,
        requests: Optional[int] = None,
        seed: int = 0,
        config: Optional[NPUConfig] = None,
        scheduler: Optional[MultiTaskScheduler] = None,
        detail_ms: float = DEFAULT_DETAIL_MS,
    ):
        if mechanism not in MECHANISMS:
            raise ConfigError(
                f"unknown mechanism {mechanism!r}; choose from "
                f"{', '.join(MECHANISMS)}"
            )
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if balance not in CLUSTER_POLICIES:
            raise ConfigError(
                f"unknown balance policy {balance!r}; choose from "
                f"{', '.join(CLUSTER_POLICIES)}"
            )
        if detail_ms <= 0:
            raise ConfigError(f"detail_ms must be positive, got {detail_ms}")
        self.scenario = scenario
        self.mechanism = mechanism
        self.policy = policy
        self.balance = balance
        self.workers = int(workers)
        self.seed = int(seed)
        self.config = config or NPUConfig.paper_default()
        self.scheduler = scheduler or MultiTaskScheduler(self.config)
        #: Aggregate cluster rate.  The default scales the scenario's
        #: single-NPU design load by the fleet size, so every worker
        #: sees the load the scenario was calibrated for.
        self.rps = (
            scenario.rps * self.workers if rps is None else float(rps)
        )
        if self.rps < 0:
            raise ConfigError(f"rps must be non-negative, got {self.rps}")
        if requests is not None:
            requests = int(requests)
            if requests < 0:
                raise ConfigError(
                    f"requests must be non-negative, got {requests}"
                )
            if requests > 0 and self.rps <= 0:
                raise ConfigError("requests > 0 needs a positive rps")
            self.duration_ms = (
                requests / self.rps * 1000.0 if requests else 0.0
            ) or scenario.duration_ms
            self.requests_target: Optional[int] = requests
        else:
            self.duration_ms = (
                scenario.duration_ms if duration_ms is None
                else float(duration_ms)
            )
            if self.duration_ms <= 0:
                raise ConfigError(
                    f"duration_ms must be positive, got {self.duration_ms}"
                )
            self.requests_target = None
        self.detail_ms = min(self.duration_ms, float(detail_ms))

    # ------------------------------------------------------------------
    def run(self) -> ClusterReport:
        assignment = assign_streams(
            build_streams(self.scenario), self.workers, self.balance
        )
        scenarios = [
            worker_scenario(self.scenario, idx, assignment[idx])
            for idx in range(self.workers)
        ]
        worker_rates = [
            self.rps * sum(sum(m.values()) for m in assignment[idx].values())
            for idx in range(self.workers)
        ]
        horizon_s = self.duration_ms / 1000.0
        total_requests = (
            self.requests_target
            if self.requests_target is not None
            else int(round(self.rps * horizon_s))
        )
        per_worker_requests = allocate_requests(total_requests, worker_rates)

        fluid = [
            self._fluid_worker(
                idx, scenarios[idx], worker_rates[idx],
                per_worker_requests[idx],
            )
            for idx in range(self.workers)
        ]
        worker_reports: List[Optional[ServeReport]] = []
        for idx in range(self.workers):
            if scenarios[idx] is None or worker_rates[idx] <= 0:
                worker_reports.append(None)
                continue
            sim = ServeSimulator(
                scenarios[idx],
                mechanism=self.mechanism,
                policy=self.policy,
                rps=worker_rates[idx],
                duration_ms=self.detail_ms,
                seed=self.seed,
                config=self.config,
                scheduler=self.scheduler,
            )
            worker_reports.append(
                ServeReport.build(sim.run(), scenario=scenarios[idx])
            )

        pooled: Dict[str, List[CompletedRequest]] = {}
        worlds: Dict[str, str] = {}
        slas: Dict[str, Optional[float]] = {}
        for spec in self.scenario.tenants:
            pooled[spec.name] = []
            worlds[spec.name] = spec.world
            slas[spec.name] = spec.sla_ms
        all_completed: List[CompletedRequest] = []
        wait_clamps = 0
        clamped_cycles = 0.0
        for rep in worker_reports:
            if rep is None:
                continue
            wait_clamps += rep.outcome.wait_clamps
            clamped_cycles += rep.outcome.clamped_cycles
            for comp in rep.outcome.completed:
                pooled[comp.request.tenant].append(comp)
                all_completed.append(comp)
        cycles_per_ms = self.config.freq_ghz * 1e6
        tenants = [
            tenant_stats(
                name, worlds[name], slas[name], pooled[name], cycles_per_ms
            )
            for name in sorted(pooled)
        ]
        aggregate = tenant_stats(
            "all", "-", None, all_completed, cycles_per_ms
        )

        checks = self._reconcile(
            assignment, worker_rates, fluid, worker_reports, tenants
        )
        return ClusterReport(
            scenario=self.scenario.name,
            mechanism=self.mechanism,
            policy=self.policy,
            balance=self.balance,
            workers=self.workers,
            rps=self.rps,
            duration_ms=self.duration_ms,
            detail_ms=self.detail_ms,
            seed=self.seed,
            freq_ghz=self.config.freq_ghz,
            requests_total=total_requests,
            requests_detailed=len(all_completed),
            fluid=fluid,
            worker_reports=worker_reports,
            tenants=tenants,
            aggregate=aggregate,
            reconciliation=checks,
            wait_clamps=wait_clamps,
            clamped_cycles=clamped_cycles,
        )

    # ------------------------------------------------------------------
    def _fluid_worker(
        self,
        idx: int,
        scenario: Optional[Scenario],
        rate_rps: float,
        requests: int,
    ) -> WorkerFluid:
        if scenario is None or rate_rps <= 0:
            return WorkerFluid(
                worker=idx, rate_rps=0.0, requests=0,
                service_mean_cycles=0.0, loaded_mean_cycles=0.0,
                overhead_mean_cycles=0.0, utilization=0.0,
                latency_est_ms=0.0, saturated=False,
            )
        models = {key: build_model(key) for key in scenario.model_keys()}
        per_model, oracle = _service_cycles_by_model(
            self.scheduler, models, self.mechanism
        )
        # Mix-weighted mean service cycles per request, and the marginal
        # model-draw distribution (for the expected co-run time).
        service_mean = 0.0
        model_probs: Dict[str, float] = {}
        tenant_rates: List[float] = []
        world_rates: Dict[str, float] = {}
        for spec in scenario.tenants:
            total_w = sum(w for _, w in spec.models)
            tenant_rates.append(spec.share)
            world_rates[spec.world] = (
                world_rates.get(spec.world, 0.0) + spec.share
            )
            for model, w in spec.models:
                prob = spec.share * (w / total_w)
                model_probs[model] = model_probs.get(model, 0.0) + prob
                service_mean += prob * per_model[model]
        if oracle is not None:
            # Spatial: under load both slots are busy, so a request is
            # served at its expected *pair* rate, not its alone rate —
            # charging capacity at the alone rate would overstate a
            # spatial worker's throughput roughly 2x.
            loaded_mean = sum(
                p_i * p_j * oracle.pair(m_i, m_j)[0]
                for m_i, p_i in sorted(model_probs.items())
                for m_j, p_j in sorted(model_probs.items())
            )
        else:
            loaded_mean = service_mean
        # Expected switch overhead per request: consecutive requests
        # change protection domain with P = 1 - sum p_t^2 (temporal pays
        # scrub + context switch), and change world with the analogous
        # probability (both sharing axes pay one context switch).
        switch_cost = (
            self.config.scrub_cycles(self.config.spad_lines)
            + self.config.context_switch_cycles
        )
        world_cost = float(self.config.context_switch_cycles)
        p_domain = _collision_prob(tenant_rates)
        p_world = _collision_prob(list(world_rates.values()))
        overhead = p_world * world_cost
        if self.mechanism.startswith("flush-"):
            overhead += p_domain * switch_cost
        # Capacity: temporal mechanisms serve one request at a time;
        # spatial mechanisms co-run two slots (at the loaded pair rate).
        capacity = 1.0 if self.mechanism.startswith("flush-") else 2.0
        lam = rate_rps / (self.config.freq_ghz * 1e9)  # requests/cycle
        rho = lam * (loaded_mean + overhead) / capacity
        saturated = rho >= 0.999
        if saturated:
            latency_est_ms: Optional[float] = None
        else:
            latency_cycles = (loaded_mean + overhead) / (1.0 - rho)
            latency_est_ms = latency_cycles / (self.config.freq_ghz * 1e6)
        return WorkerFluid(
            worker=idx, rate_rps=rate_rps, requests=requests,
            service_mean_cycles=service_mean,
            loaded_mean_cycles=loaded_mean,
            overhead_mean_cycles=overhead,
            utilization=rho, latency_est_ms=latency_est_ms,
            saturated=saturated,
        )

    # ------------------------------------------------------------------
    def _reconcile(
        self,
        assignment: Assignment,
        worker_rates: List[float],
        fluid: List[WorkerFluid],
        worker_reports: List[Optional[ServeReport]],
        tenants: List[TenantReport],
    ) -> List[Dict[str, Any]]:
        """Check the detailed sample against the fluid totals.

        Every check appends a row ``{check, subject, observed, bound,
        ok}``; the first violation raises :class:`ReconciliationError`
        carrying the full context.  Bounds are declared, not tuned:
        arrival counts get Poisson noise (4 sigma, floored at 25 %),
        per-request service accounting a 35 % band, mean latency a
        service-floor and a 10x ceiling that only applies while every
        worker is below 90 % utilization.
        """
        checks: List[Dict[str, Any]] = []
        detail_s = self.detail_ms / 1000.0

        def record(check: str, subject: str, observed: float,
                   bound: float) -> None:
            ok = observed <= bound
            checks.append({
                "check": check, "subject": subject,
                "observed": observed, "bound": bound, "ok": ok,
            })
            if not ok:
                raise ReconciliationError(
                    f"cluster fluid/detailed mismatch: {check} for "
                    f"{subject}: observed {observed:.4g} exceeds bound "
                    f"{bound:.4g}"
                )

        # 1. Per-tenant arrival rates: pooled detailed completions vs
        # the fluid rate (Poisson counting noise).
        for rep in tenants:
            tenant_rate = self.rps * sum(
                sum(assignment[w].get(rep.tenant, {}).values())
                for w in range(self.workers)
            )
            expected_n = tenant_rate * detail_s
            if expected_n < 5.0:
                continue
            bound = max(0.25, 4.0 / math.sqrt(expected_n))
            rel_err = abs(rep.n - expected_n) / expected_n
            record("tenant_rate", rep.tenant, rel_err, bound)

        # 2. Per-worker service accounting: the detailed busy cycles
        # must match requests x fluid per-request cost.  Robust to
        # saturation (unlike a utilization ratio, whose denominator
        # stretches with the queue), it pins the fluid S_mean to what
        # the detailed path actually charged.
        for idx, rep in enumerate(worker_reports):
            n = rep.aggregate.n if rep is not None else 0
            if rep is None or n < 20:
                continue
            f = fluid[idx]
            expected = n * (f.service_mean_cycles + f.overhead_mean_cycles)
            if expected <= 0:
                continue
            rel_err = abs(rep.outcome.busy_cycles - expected) / expected
            record("service_accounting", f"w{idx}", rel_err, 0.35)

        # 3. Mean latency: the detailed sample can never beat half the
        # fluid service floor (requests pay their service time), and —
        # while no worker saturates — must stay within 10x the fluid
        # M/M/1 estimate.
        all_below_knee = all(f.utilization <= 0.9 for f in fluid)
        for idx, rep in enumerate(worker_reports):
            if rep is None or rep.aggregate.mean_ms is None:
                continue
            f = fluid[idx]
            service_floor_ms = (
                0.5 * f.service_mean_cycles
                / (self.config.freq_ghz * 1e6)
            )
            record(
                "latency_floor", f"w{idx}",
                service_floor_ms, rep.aggregate.mean_ms,
            )
            if all_below_knee and f.latency_est_ms:
                record(
                    "latency_ceiling", f"w{idx}",
                    rep.aggregate.mean_ms, 10.0 * f.latency_est_ms,
                )
        return checks


def autoscale(
    scenario: Scenario,
    mechanism: str = "snpu",
    policy: str = "rr",
    balance: str = "rr",
    rps: Optional[float] = None,
    duration_ms: Optional[float] = None,
    requests: Optional[int] = None,
    seed: int = 0,
    config: Optional[NPUConfig] = None,
    scheduler: Optional[MultiTaskScheduler] = None,
    detail_ms: float = DEFAULT_DETAIL_MS,
    min_workers: int = 1,
    max_workers: int = 16,
    target_attainment: float = 0.95,
) -> ClusterReport:
    """Grow the fleet until pooled p99/SLA signals meet the target.

    The *total* offered load is held fixed at the ``min_workers``
    cluster's rate (autoscaling absorbs a given load, it does not invent
    more), so each doubling halves per-worker pressure.  The decision
    rule reads the pooled per-tenant report: attainment below 50 % is
    catastrophic (double), otherwise step by one; hold when every tenant
    meets ``p99 <= sla_ms`` and attainment >= target.
    """
    if min_workers < 1 or max_workers < min_workers:
        raise ConfigError(
            f"need 1 <= min_workers <= max_workers, got "
            f"{min_workers}..{max_workers}"
        )
    config = config or NPUConfig.paper_default()
    scheduler = scheduler or MultiTaskScheduler(config)
    total_rps = scenario.rps * min_workers if rps is None else float(rps)
    steps: List[AutoscaleStep] = []
    n = min_workers
    while True:
        sim = ClusterSimulator(
            scenario, mechanism=mechanism, policy=policy, balance=balance,
            workers=n, rps=total_rps, duration_ms=duration_ms,
            requests=requests, seed=seed, config=config,
            scheduler=scheduler, detail_ms=detail_ms,
        )
        report = sim.run()
        attainments = [
            t.sla_attainment for t in report.tenants
            if t.sla_attainment is not None
        ]
        ratios = [
            t.p99_ms / t.sla_ms for t in report.tenants
            if t.p99_ms is not None and t.sla_ms
        ]
        min_att = min(attainments) if attainments else None
        worst = max(ratios) if ratios else None
        ok = (
            min_att is not None and min_att >= target_attainment
            and worst is not None and worst <= 1.0
        )
        if ok or n >= max_workers:
            steps.append(AutoscaleStep(n, min_att, worst, ok, "hold"))
            report.autoscale_steps = steps
            return report
        decision = (
            "double" if (min_att is not None and min_att < 0.5) else "step"
        )
        steps.append(AutoscaleStep(n, min_att, worst, ok, decision))
        n = min(max_workers, n * 2 if decision == "double" else n + 1)
