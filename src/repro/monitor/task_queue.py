"""Secure task queue: verified secure tasks awaiting NPU scheduling."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.memory.allocator import Chunk
from repro.npu.isa import NPUProgram


@dataclass
class SecureTask:
    """A verified secure task with its secure-memory binding."""

    task_id: int
    program: NPUProgram
    measurement: bytes
    chunks: Dict[str, Chunk] = field(default_factory=dict)
    #: NoC topology the task expects, e.g. (2, 2); None = single core.
    topology: Optional[Tuple[int, int]] = None
    loaded_cores: List[int] = field(default_factory=list)
    #: Secure domain ID when the Monitor manages multiple domains (§VII);
    #: 0 means the single hardware secure world.
    domain: int = 0


class SecureTaskQueue:
    """FIFO of verified secure tasks (the Monitor owns it exclusively)."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[SecureTask] = deque()
        self._next_id = 1

    def enqueue(self, task: SecureTask) -> None:
        if len(self._queue) >= self.capacity:
            raise ConfigError("secure task queue is full")
        self._queue.append(task)

    def dequeue(self) -> Optional[SecureTask]:
        return self._queue.popleft() if self._queue else None

    def peek(self) -> Optional[SecureTask]:
        return self._queue[0] if self._queue else None

    def new_task_id(self) -> int:
        tid = self._next_id
        self._next_id += 1
        return tid

    def __len__(self) -> int:
        return len(self._queue)
