"""CPU-side TEE substrate: PMP-protected secure world and secure boot.

The prototype "implemented the NPU Monitor within a secure domain using
PMP protection in RISC-V CPUs" on top of the Penglai TEE, with a secure
boot flow: "the secure CPU verifies a minimal code of the trusted loader,
which then loads and verifies the trusted firmware.  The trusted firmware
further loads and verifies software in the trusted world, such as TEEOS
and NPU Monitor...  The Root-of-Trust for this secure boot chain remains
in the SoC" (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.types import AddressRange, Permission, World
from repro.errors import MeasurementError, PrivilegeError
from repro.monitor.crypto import measure


@dataclass(frozen=True)
class PMPRegion:
    """One physical-memory-protection entry."""

    range: AddressRange
    world: World
    perm: Permission = Permission.RW


class PMPChecker:
    """RISC-V PMP-style filter for CPU-side accesses to monitor memory."""

    def __init__(self, regions: Optional[List[PMPRegion]] = None):
        self.regions: List[PMPRegion] = list(regions or [])
        self.violations = 0

    def add(self, region: PMPRegion) -> None:
        self.regions.append(region)

    def check(self, addr: int, size: int, world: World, perm: Permission) -> None:
        """Raise :class:`~repro.errors.PrivilegeError` on an illegal access."""
        for region in self.regions:
            if region.range.contains(addr, size):
                if region.world is World.SECURE and world is not World.SECURE:
                    self.violations += 1
                    raise PrivilegeError(
                        f"PMP: {world.name} access to secure range "
                        f"[{addr:#x}, {addr + size:#x})"
                    )
                if not region.perm.allows(perm):
                    self.violations += 1
                    raise PrivilegeError(
                        f"PMP: permission {region.perm!r} denies {perm!r} at "
                        f"{addr:#x}"
                    )
                return
        # Addresses outside every PMP region default to normal world.


@dataclass
class BootStage:
    """One link of the secure boot chain."""

    name: str
    code: bytes
    expected_measurement: bytes


class SecureBootChain:
    """Measured boot: loader -> firmware -> TEEOS -> NPU Monitor.

    Each stage's code is measured and compared against the expectation
    held by the previous (already-trusted) stage; the Root-of-Trust is the
    SoC-fused expectation of the first stage.
    """

    def __init__(self, stages: List[BootStage]):
        self.stages = stages
        self.booted = False
        self.measurements: Dict[str, bytes] = {}

    @classmethod
    def standard(cls, monitor_code: bytes) -> "SecureBootChain":
        """Build the paper's chain with deterministic stand-in blobs."""
        blobs = [
            ("trusted_loader", b"snpu-trusted-loader-v1"),
            ("trusted_firmware", b"snpu-opensbi-firmware-v1"),
            ("teeos", b"snpu-teeos-v1"),
            ("npu_monitor", monitor_code),
        ]
        return cls(
            [
                BootStage(name, code, measure(code))
                for name, code in blobs
            ]
        )

    def boot(self) -> Dict[str, bytes]:
        """Verify every stage in order; returns the measurement log."""
        for stage in self.stages:
            digest = measure(stage.code)
            if digest != stage.expected_measurement:
                self.booted = False
                raise MeasurementError(
                    f"secure boot: stage {stage.name!r} measurement mismatch"
                )
            self.measurements[stage.name] = digest
        self.booted = True
        return dict(self.measurements)
