"""Secure loader shim: route integrity + task upload (§IV-B/C).

"Secure loader first guarantees the route integrity of the ML task...
verifies whether scheduled NPU cores match the topology of the expected
NoC network.  After verifying the route integrity, secure loader uploads
the ML task into corresponding NPU cores."

The canonical attack: a task requests a 2x2 sub-mesh; a malicious driver
schedules it onto 1x4 cores, forcing its NoC traffic through unexpected
cores.  ``verify_route`` rejects any allocation that is not a contiguous
rectangle of the requested shape.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import telemetry
from repro.errors import RouteIntegrityError
from repro.monitor.task_queue import SecureTask
from repro.noc.mesh import Mesh


class SecureLoader:
    """Verifies NoC topology and uploads secure tasks to cores."""

    def __init__(self, mesh: Mesh):
        self.mesh = mesh
        self.loads = 0
        self.rejections = 0
        tel = telemetry.metrics.group("monitor.loader")
        tel.bind("loads", self, "loads")
        tel.bind("route_rejections", self, "rejections")

    def verify_route(
        self, topology: Optional[Tuple[int, int]], core_ids: List[int]
    ) -> None:
        """Check the scheduled cores against the task's expected topology."""
        if topology is None:
            if len(core_ids) != 1:
                self.rejections += 1
                raise RouteIntegrityError(
                    f"single-core task scheduled onto {len(core_ids)} cores"
                )
            return
        rows, cols = topology
        if not self.mesh.is_rectangle(core_ids, rows, cols):
            self.rejections += 1
            raise RouteIntegrityError(
                f"scheduled cores {sorted(core_ids)} do not form the expected "
                f"{rows}x{cols} sub-mesh"
            )

    def load(self, task: SecureTask, core_ids: List[int]) -> None:
        """Route-check then mark the task as loaded on *core_ids*."""
        tracer = telemetry.tracer
        try:
            self.verify_route(task.topology, core_ids)
        except RouteIntegrityError:
            if tracer.enabled:
                tracer.instant(
                    "route.reject", "noc", track="monitor",
                    task=task.task_id, cores=sorted(core_ids),
                )
            raise
        if tracer.enabled:
            tracer.instant(
                "route.verify", "noc", track="monitor",
                task=task.task_id, cores=sorted(core_ids),
            )
        task.loaded_cores = list(core_ids)
        self.loads += 1
