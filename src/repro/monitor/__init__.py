"""NPU Monitor: the trusted software module in the secure world (§IV-C).

"We adhere to the design principle of decoupling security from strategy,
and only move a small monitor into the secure world.  This monitor is
responsible for performing security checks, managing critical resources,
and acting as a bridge between the secure CPU and NPU."

Shim modules: context setter, trusted allocator, code verifier, secure
loader; auxiliary components: the trampoline and the secure task queue;
substrate: a Penglai-style secure world with PMP protection and a secure
boot chain.
"""

from repro.monitor.tee import PMPRegion, PMPChecker, SecureBootChain, BootStage
from repro.monitor.crypto import measure, stream_cipher
from repro.monitor.trampoline import Trampoline, TrampolineFunc, TrampolineCall
from repro.monitor.task_queue import SecureTask, SecureTaskQueue
from repro.monitor.code_verifier import CodeVerifier
from repro.monitor.trusted_allocator import TrustedAllocator
from repro.monitor.context_setter import ContextSetter, install_platform_checking
from repro.monitor.secure_loader import SecureLoader
from repro.monitor.monitor import NPUMonitor

__all__ = [
    "PMPRegion",
    "PMPChecker",
    "SecureBootChain",
    "BootStage",
    "measure",
    "stream_cipher",
    "Trampoline",
    "TrampolineFunc",
    "TrampolineCall",
    "SecureTask",
    "SecureTaskQueue",
    "CodeVerifier",
    "TrustedAllocator",
    "ContextSetter",
    "install_platform_checking",
    "SecureLoader",
    "NPUMonitor",
]
