"""Trampoline: the normal-world <-> Monitor call gate (§IV-C, §V).

"To facilitate communication with software in the non-secure domain, we
have designed a trampoline protocol that includes the function ID,
arguments, and shared memory."

The trampoline is the *only* path from the untrusted driver into the
Monitor.  It validates the function ID, defensively copies the shared
memory (so the caller cannot mutate it mid-check — a classic TOCTOU), and
bounds argument sizes before dispatching to a registered handler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro import telemetry
from repro.common.types import World
from repro.errors import TrampolineError


class TrampolineFunc(enum.IntEnum):
    """Stable function IDs of the Monitor ABI."""

    SUBMIT_SECURE_TASK = 1
    RUN_NEXT_SECURE_TASK = 2
    RELEASE_SECURE_TASK = 3
    QUERY_QUEUE_DEPTH = 4
    ATTEST_MEASUREMENT = 5


#: Maximum shared-memory payload crossing the trampoline (one call).
MAX_SHARED_BYTES = 64 * 1024 * 1024
#: Maximum number of scalar arguments.
MAX_ARGS = 16


@dataclass
class TrampolineCall:
    """One marshalled call from the normal world."""

    func: TrampolineFunc
    args: Dict[str, Any] = field(default_factory=dict)
    shared: bytes = b""


Handler = Callable[[TrampolineCall, World], Any]


class Trampoline:
    """Function-ID dispatch table with defensive marshalling."""

    #: Cycles one Monitor invocation spends crossing the gate.  The call
    #: is control-plane work off the NPU's critical path, so the paper's
    #: timing model charges none — the profiler hook keeps the
    #: ``monitor.call`` decomposition row explicit regardless.
    CALL_CYCLES: float = 0.0

    def __init__(self):
        self._handlers: Dict[TrampolineFunc, Handler] = {}
        self.calls = 0
        self.rejected = 0

    def register(self, func: TrampolineFunc, handler: Handler) -> None:
        if func in self._handlers:
            raise TrampolineError(f"handler for {func.name} already registered")
        self._handlers[func] = handler

    def invoke(
        self,
        func: int,
        args: Optional[Dict[str, Any]] = None,
        shared: bytes = b"",
        caller_world: World = World.NORMAL,
    ) -> Any:
        """Cross into the Monitor.  Raises on malformed calls."""
        self.calls += 1
        telemetry.profiler.count("monitor.trampoline_calls")
        telemetry.profiler.attribute("monitor.call", self.CALL_CYCLES)
        try:
            func_id = TrampolineFunc(func)
        except ValueError:
            self.rejected += 1
            raise TrampolineError(f"unknown trampoline function id {func}")
        handler = self._handlers.get(func_id)
        if handler is None:
            self.rejected += 1
            raise TrampolineError(f"no handler for {func_id.name}")
        args = dict(args or {})
        if len(args) > MAX_ARGS:
            self.rejected += 1
            raise TrampolineError(f"too many arguments ({len(args)} > {MAX_ARGS})")
        if len(shared) > MAX_SHARED_BYTES:
            self.rejected += 1
            raise TrampolineError(
                f"shared buffer of {len(shared)} bytes exceeds "
                f"{MAX_SHARED_BYTES}"
            )
        # Defensive copy: the normal world must not be able to flip bytes
        # between the Monitor's checks and its use of the data.
        call = TrampolineCall(func=func_id, args=args, shared=bytes(shared))
        return handler(call, caller_world)
