"""Trusted allocator shim: secure memory + scratchpad slot management (§IV-C).

"Trusted allocator is responsible for allocating memory buffers in the
reserved secure memory like input/output data and model of secure tasks.
It also checks that there is no overlap for the scratchpad."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.types import AddressRange
from repro.errors import AllocationError, ConfigError
from repro.memory.allocator import Chunk, ChunkAllocator
from repro.npu.isa import NPUProgram


@dataclass(frozen=True)
class SpadSlot:
    """A reserved scratchpad line range for one secure task."""

    task_id: int
    core_id: int
    start_line: int
    lines: int

    @property
    def end_line(self) -> int:
        return self.start_line + self.lines


class TrustedAllocator:
    """Allocates secure-memory chunks and non-overlapping scratchpad slots."""

    def __init__(self, secure_range: AddressRange, spad_lines: int):
        if spad_lines < 1:
            raise ConfigError(f"spad_lines must be >= 1, got {spad_lines}")
        self._chunks = ChunkAllocator(secure_range, alignment=4096)
        self.spad_lines = spad_lines
        self._slots: List[SpadSlot] = []

    # ------------------------------------------------------------------
    # Secure memory
    # ------------------------------------------------------------------
    def bind_program(self, program: NPUProgram, task_id: int) -> Dict[str, Chunk]:
        """Allocate one secure chunk per program buffer."""
        chunks: Dict[str, Chunk] = {}
        try:
            for name, vrange in program.chunks.items():
                chunks[name] = self._chunks.alloc(
                    vrange.size, tag=f"secure:{task_id}:{name}"
                )
        except AllocationError:
            for chunk in chunks.values():
                self._chunks.free(chunk)
            raise
        return chunks

    def release_chunks(self, chunks: Dict[str, Chunk]) -> None:
        for chunk in chunks.values():
            self._chunks.free(chunk)

    # ------------------------------------------------------------------
    # Scratchpad slots (the no-overlap check)
    # ------------------------------------------------------------------
    def reserve_spad(self, task_id: int, core_id: int, start: int, lines: int) -> SpadSlot:
        """Reserve scratchpad lines for a task; overlap is rejected."""
        if start < 0 or lines < 1 or start + lines > self.spad_lines:
            raise ConfigError(
                f"spad slot [{start}, {start + lines}) outside 0..{self.spad_lines}"
            )
        for slot in self._slots:
            if slot.core_id == core_id and not (
                start + lines <= slot.start_line or start >= slot.end_line
            ):
                raise AllocationError(
                    f"scratchpad slot [{start}, {start + lines}) on core "
                    f"{core_id} overlaps task {slot.task_id}'s "
                    f"[{slot.start_line}, {slot.end_line})"
                )
        slot = SpadSlot(task_id=task_id, core_id=core_id, start_line=start, lines=lines)
        self._slots.append(slot)
        return slot

    def release_spad(self, task_id: int) -> int:
        """Free every slot of *task_id*; returns lines released."""
        released = sum(s.lines for s in self._slots if s.task_id == task_id)
        self._slots = [s for s in self._slots if s.task_id != task_id]
        return released

    @property
    def secure_bytes_used(self) -> int:
        return self._chunks.used_bytes

    @property
    def slots(self) -> List[SpadSlot]:
        return list(self._slots)
