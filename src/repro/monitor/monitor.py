"""The NPU Monitor facade: wires the shims into one trusted module.

Lifecycle of a secure task (Fig. 10):

1. the untrusted driver marshals the task through the **trampoline**
   (function ID + arguments + shared memory),
2. the **code verifier** measures the task code against the user's
   expectation (and decrypts the confidential model if one is attached),
3. the **trusted allocator** binds the task's buffers in secure memory,
4. the task waits in the **secure task queue**,
5. at schedule time the **secure loader** verifies route integrity and
   the **context setter** programs the core ID state and the secure
   translation registers,
6. on completion the context setter scrubs secure scratchpad state and
   downgrades the core.

Non-secure tasks never enter the Monitor: "we do not apply any software
checks and rely only on the hardware mechanisms" (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.common.types import Permission, World
from repro.errors import ConfigError, PrivilegeError
from repro.memory.regions import MemoryMap
from repro.mmu.guarder import NPUGuarder
from repro.monitor.code_verifier import CodeVerifier
from repro.monitor.context_setter import ContextSetter, install_platform_checking
from repro.monitor.secure_loader import SecureLoader
from repro.monitor.task_queue import SecureTask, SecureTaskQueue
from repro.monitor.tee import PMPChecker, PMPRegion, SecureBootChain
from repro.monitor.trampoline import Trampoline, TrampolineCall, TrampolineFunc
from repro.monitor.trusted_allocator import TrustedAllocator
from repro.noc.mesh import Mesh
from repro.npu.core import NPUCore
from repro.npu.isa import NPUProgram


@dataclass
class ScheduledSecureTask:
    """A secure task installed on cores with live secure context."""

    task: SecureTask
    core_ids: List[int]
    xlat_registers: Dict[int, List[int]] = field(default_factory=dict)


class NPUMonitor:
    """The trusted software module for the NPU (runs in the secure world)."""

    MONITOR_CODE = b"snpu-npu-monitor-v1"

    def __init__(
        self,
        memmap: MemoryMap,
        guarder: NPUGuarder,
        cores: List[NPUCore],
        mesh: Optional[Mesh] = None,
        domain_bits: int = 1,
    ):
        if not cores:
            raise ConfigError("the Monitor needs at least one NPU core")
        self.memmap = memmap
        self.guarder = guarder
        self.cores = cores
        self.mesh = mesh or Mesh(1, len(cores))
        # §VII: with domain_bits > 1 the Monitor manages multiple secure
        # domains; each concurrently queued secure task gets its own.
        from repro.npu.domains import DomainManager

        self.domains = DomainManager(domain_bits) if domain_bits > 1 else None

        secure = memmap.region("secure")
        self.verifier = CodeVerifier()
        self.allocator = TrustedAllocator(
            secure.range, spad_lines=cores[0].scratchpad.lines
        )
        self.queue = SecureTaskQueue()
        self.context_setter = ContextSetter(guarder)
        self.loader = SecureLoader(self.mesh)
        self.pmp = PMPChecker([PMPRegion(secure.range, World.SECURE)])
        self.boot_chain = SecureBootChain.standard(self.MONITOR_CODE)
        self.trampoline = Trampoline()
        self._register_handlers()
        self.booted = False
        tel = telemetry.metrics.group("monitor")
        self._m_submitted = tel.counter("tasks_submitted")
        self._m_scheduled = tel.counter("tasks_scheduled")
        self._m_completed = tel.counter("tasks_completed")
        tel.bind("queue_depth", self.queue, "__len__")

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def boot(self) -> Dict[str, bytes]:
        """Measured boot, then program the platform checking registers."""
        measurements = self.boot_chain.boot()
        install_platform_checking(self.guarder, self.memmap)
        self.booted = True
        return measurements

    # ------------------------------------------------------------------
    # Secure-world API (also reachable through the trampoline)
    # ------------------------------------------------------------------
    def submit(
        self,
        program: NPUProgram,
        expected_measurement: bytes,
        encrypted_model: Optional[bytes] = None,
        model_key: Optional[bytes] = None,
        model_tag: Optional[bytes] = None,
    ) -> int:
        """Verify and enqueue a secure task; returns its task id."""
        self._require_boot()
        if program.world is not World.SECURE:
            raise ConfigError("submit() only accepts secure programs")
        audit = telemetry.audit
        try:
            measurement = self.verifier.verify_program(
                program, expected_measurement
            )
        except Exception as exc:
            if audit.enabled:
                audit.record(
                    "monitor.submit", "deny", world=World.SECURE.name,
                    task=program.task_name, reason=type(exc).__name__,
                )
            raise
        if encrypted_model is not None:
            if model_key is None:
                raise ConfigError("encrypted model without a key")
            # Decryption lands in secure memory; the plaintext model never
            # exists in the normal world.
            self.verifier.decrypt_model(
                model_key, encrypted_model, tag=model_tag
            )
        task_id = self.queue.new_task_id()
        domain = self.domains.allocate(task_id) if self.domains else 0
        try:
            chunks = self.allocator.bind_program(program, task_id)
        except Exception:
            if self.domains:
                self.domains.release(domain)
            raise
        task = SecureTask(
            task_id=task_id,
            program=program,
            measurement=measurement,
            chunks=chunks,
            topology=program.topology,
            domain=domain,
        )
        self.queue.enqueue(task)
        self._m_submitted.inc()
        if audit.enabled:
            audit.record(
                "monitor.submit", "allow", world=World.SECURE.name,
                task=program.task_name, task_id=task_id,
            )
        telemetry.profiler.count("monitor.submits")
        tracer = telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "task.submit", "scheduler", track="monitor", task=task_id
            )
        return task_id

    def schedule_next(self, core_ids: List[int]) -> ScheduledSecureTask:
        """Pop the next secure task and install it on *core_ids*."""
        self._require_boot()
        task = self.queue.dequeue()
        if task is None:
            raise ConfigError("secure task queue is empty")
        audit = telemetry.audit
        try:
            self.loader.load(task, core_ids)
        except Exception as exc:
            self.queue.enqueue(task)  # leave the task schedulable
            if audit.enabled:
                audit.record(
                    "monitor.schedule", "deny", world=World.SECURE.name,
                    task_id=task.task_id, reason=type(exc).__name__,
                )
            raise
        scheduled = ScheduledSecureTask(task=task, core_ids=list(core_ids))
        # One chunk mapping serves the whole task; every scheduled core's
        # ID state flips secure.
        regs = self.context_setter.map_chunks(task.program, task.chunks)
        scheduled.xlat_registers[core_ids[0]] = regs
        for core_id in core_ids:
            self.context_setter.set_core_secure(self._core(core_id))
        self._m_scheduled.inc()
        if audit.enabled:
            audit.record(
                "monitor.schedule", "allow", world=World.SECURE.name,
                task_id=task.task_id, cores=list(core_ids),
            )
        telemetry.profiler.count("monitor.schedules")
        tracer = telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "task.schedule", "scheduler", track="monitor",
                task=task.task_id, cores=list(core_ids),
            )
        return scheduled

    def complete(self, scheduled: ScheduledSecureTask) -> None:
        """Tear down a finished secure task (scrub + downgrade + free)."""
        self._require_boot()
        for core_id in scheduled.core_ids:
            core = self._core(core_id)
            regs = scheduled.xlat_registers.get(core_id, [])
            self.context_setter.clear_secure_context(core, regs)
        self.allocator.release_chunks(scheduled.task.chunks)
        self.allocator.release_spad(scheduled.task.task_id)
        if self.domains and scheduled.task.domain:
            self.domains.release(scheduled.task.domain)
        scheduled.task.chunks = {}
        self._m_completed.inc()
        audit = telemetry.audit
        if audit.enabled:
            audit.record(
                "monitor.complete", "allow", world=World.SECURE.name,
                task_id=scheduled.task.task_id,
            )
        telemetry.profiler.count("monitor.completions")
        tracer = telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "task.complete", "scheduler", track="monitor",
                task=scheduled.task.task_id,
            )

    def attest(self) -> Dict[str, bytes]:
        """Return the secure boot measurement log (remote attestation)."""
        self._require_boot()
        return dict(self.boot_chain.measurements)

    #: Device-unique attestation key (fused at manufacturing; the secure
    #: boot ROM hands it only to a correctly measured Monitor).
    DEVICE_KEY = b"snpu-device-endorsement-key"

    def quote(self, nonce: bytes, task_measurement: Optional[bytes] = None) -> Dict[str, bytes]:
        """Produce a signed attestation quote for a remote verifier.

        Binds the verifier's *nonce* (freshness), the secure-boot
        measurement log, and optionally the measurement of a specific
        secure task, under a MAC with the device key — the paper's
        user-facing attestation flow (cf. ITX's focus, §VII discussion).
        """
        from repro.common.crypto import mac, measure

        self._require_boot()
        log = b"".join(
            name.encode() + digest
            for name, digest in sorted(self.boot_chain.measurements.items())
        )
        body = nonce + measure(log) + (task_measurement or b"")
        return {
            "nonce": nonce,
            "boot_digest": measure(log),
            "task_measurement": task_measurement or b"",
            "signature": mac(self.DEVICE_KEY, body),
        }

    @staticmethod
    def verify_quote(quote: Dict[str, bytes], device_key: bytes,
                     nonce: bytes) -> bool:
        """Remote-verifier side: check freshness and the signature."""
        from repro.common.crypto import verify_mac

        if quote.get("nonce") != nonce:
            return False
        body = (
            quote["nonce"] + quote["boot_digest"] + quote["task_measurement"]
        )
        return verify_mac(device_key, body, quote["signature"])

    # ------------------------------------------------------------------
    # Trampoline handlers (the normal world's only entry points)
    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        t = self.trampoline
        t.register(TrampolineFunc.SUBMIT_SECURE_TASK, self._h_submit)
        t.register(TrampolineFunc.RUN_NEXT_SECURE_TASK, self._h_run_next)
        t.register(TrampolineFunc.QUERY_QUEUE_DEPTH, self._h_depth)
        t.register(TrampolineFunc.ATTEST_MEASUREMENT, self._h_attest)

    def _h_submit(self, call: TrampolineCall, caller: World):
        program = call.args.get("program")
        expected = call.args.get("expected_measurement")
        if not isinstance(program, NPUProgram) or not isinstance(expected, bytes):
            raise ConfigError("submit needs a program and an expected measurement")
        return self.submit(
            program,
            expected,
            encrypted_model=call.shared or None,
            model_key=call.args.get("model_key"),
            model_tag=call.args.get("model_tag"),
        )

    def _h_run_next(self, call: TrampolineCall, caller: World):
        core_ids = list(call.args.get("core_ids", []))
        return self.schedule_next(core_ids)

    def _h_depth(self, call: TrampolineCall, caller: World):
        return len(self.queue)

    def _h_attest(self, call: TrampolineCall, caller: World):
        return self.attest()

    # ------------------------------------------------------------------
    def _core(self, core_id: int) -> NPUCore:
        if not 0 <= core_id < len(self.cores):
            raise ConfigError(f"no NPU core {core_id}")
        return self.cores[core_id]

    def _require_boot(self) -> None:
        if not self.booted:
            raise PrivilegeError("the Monitor has not completed secure boot")
