"""Cryptographic primitives used by the Monitor.

The implementations live in :mod:`repro.common.crypto` (so low-level
components like the memory encryption engine can use them without
importing the monitor package); this module is the Monitor-facing name.
"""

from repro.common.crypto import mac, measure, stream_cipher, verify_mac

__all__ = ["measure", "stream_cipher", "mac", "verify_mac"]
