"""Code verifier shim: measurement + model decryption (§IV-C).

"Code verifier first loads the code and sensitive model of the secure task
into the secure task queue.  It then calculates and verifies the
measurement of the task code against the user's expectation."
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MeasurementError
from repro.monitor.crypto import measure, stream_cipher, verify_mac
from repro.npu.isa import NPUProgram


class CodeVerifier:
    """Measures task code and decrypts confidential models."""

    def __init__(self):
        self.verified = 0
        self.rejected = 0

    def measure_program(self, program: NPUProgram) -> bytes:
        return measure(program.code_blob())

    def verify_program(self, program: NPUProgram, expected: bytes) -> bytes:
        """Return the measurement; raise on mismatch with the expectation."""
        digest = self.measure_program(program)
        if digest != expected:
            self.rejected += 1
            raise MeasurementError(
                f"task {program.task_name!r}: measurement "
                f"{digest.hex()[:16]}... does not match the user's "
                f"expectation {expected.hex()[:16]}..."
            )
        self.verified += 1
        return digest

    def decrypt_model(
        self,
        key: bytes,
        ciphertext: bytes,
        tag: Optional[bytes] = None,
        nonce: bytes = b"",
    ) -> bytes:
        """Decrypt a confidential model into secure memory.

        With *tag* set, the ciphertext is authenticated first — a tampered
        model never reaches the scratchpad.
        """
        if tag is not None and not verify_mac(key, ciphertext, tag):
            self.rejected += 1
            raise MeasurementError("encrypted model failed authentication")
        return stream_cipher(key, ciphertext, nonce=nonce)
