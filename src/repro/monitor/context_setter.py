"""Context setter shim: programs the NPU secure context (§IV-C).

"Context setter is responsible for setting the NPU secure context, which
includes NPU's ID state, checking and translation registers for secure
tasks.  The NPU context determines the hardware resources that the NPU can
access, such as system memory and scratchpad."

Everything here is issued with ``World.SECURE`` authority — it is the only
software allowed to, because the Monitor runs inside the PMP-protected
secure domain.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.types import Permission, World
from repro.errors import AllocationError
from repro.memory.allocator import Chunk
from repro.memory.regions import MemoryMap
from repro.mmu.guarder import NPUGuarder
from repro.npu.core import NPUCore
from repro.npu.isa import NPUProgram

#: Guarder translation registers owned by the Monitor (secure tasks).
SECURE_XLAT_REGS = range(8, 16)


def install_platform_checking(guarder: NPUGuarder, memmap: MemoryMap) -> None:
    """Program the checking registers from the platform memory map.

    Done once at secure boot; the registers are "rarely modified" (§IV-A).
    """
    for index, region in enumerate(memmap.regions):
        guarder.set_checking_register(
            index, region.range, region.perm, region.world, issuer=World.SECURE
        )


class ContextSetter:
    """Sets and tears down per-task NPU secure context."""

    def __init__(self, guarder: NPUGuarder):
        self.guarder = guarder
        self.contexts_set = 0

    def set_core_secure(self, core: NPUCore) -> None:
        """Flip one core's ID state secure (secure instruction)."""
        core.set_world(World.SECURE, issuer=World.SECURE)

    def map_chunks(self, program: NPUProgram, chunks: Dict[str, Chunk]) -> List[int]:
        """Map the task's secure chunks into the secure register bank.

        One mapping serves every core the task is loaded on (the Guarder
        sits in front of the complex's DMA path).  Returns the registers
        used, for teardown.
        """
        free = [
            r for r in SECURE_XLAT_REGS if self.guarder.translation[r] is None
        ]
        if len(free) < len(program.chunks):
            raise AllocationError(
                f"secure task needs {len(program.chunks)} translation "
                f"registers, {len(free)} free in the secure bank"
            )
        used: List[int] = []
        for reg, (name, vrange) in zip(free, program.chunks.items()):
            chunk = chunks[name]
            self.guarder.set_translation_register(
                reg, vbase=vrange.base, pbase=chunk.base, size=vrange.size
            )
            used.append(reg)
        self.contexts_set += 1
        return used

    def clear_secure_context(self, core: NPUCore, registers: List[int]) -> None:
        """Tear down after the task: scrub secure scratchpad state and
        downgrade the core."""
        for reg in registers:
            self.guarder.clear_translation_register(reg)
        # Downgrade every secure scratchpad line (scrubbing contents).
        core.scratchpad.reset_secure(0, core.scratchpad.lines, issuer=World.SECURE)
        core.accumulator.reset_secure(0, core.accumulator.lines, issuer=World.SECURE)
        core.set_world(World.NORMAL, issuer=World.SECURE)
