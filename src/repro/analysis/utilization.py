"""FLOPS utilization of single inference workloads (Fig. 1).

The paper's Fig. 1 motivates multitasking: "Most ML workloads utilize less
than 50% of the computational resource available in the TPU core",
attributed to "temporal idleness of MCU and the inefficient use of memory
bandwidth".

We report utilization on two configurations:

* the paper's Gemmini tile (Table II), and
* a TPU-like scale-up (bigger array, relatively less bandwidth) showing
  that utilization drops further as the NPU grows — the effect the figure
  was measured on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.driver.scheduler import MultiTaskScheduler
from repro.npu.config import NPUConfig
from repro.workloads.model import ModelGraph


@dataclass
class UtilizationRow:
    """One bar of Fig. 1."""

    workload: str
    utilization: float
    cycles: float
    macs: int

    def __str__(self) -> str:
        return f"{self.workload:12s} {self.utilization:6.1%}"


def tpu_like_config() -> NPUConfig:
    """A TPU-flavoured scale-up: 64x64 MXU, large scratchpad, and a
    compute/bandwidth ratio far above the Gemmini tile's."""
    return NPUConfig(
        array_dim=64,
        spad_bytes=8 * 1024 * 1024,
        acc_bytes_total=2 * 1024 * 1024,
        dram_bytes_per_cycle=64.0,
        weight_preload_cycles=64,
    )


def utilization_report(
    models: List[ModelGraph],
    config: Optional[NPUConfig] = None,
) -> List[UtilizationRow]:
    """Measure end-to-end FLOPS utilization of each workload."""
    config = config or NPUConfig.paper_default()
    scheduler = MultiTaskScheduler(config)
    rows: List[UtilizationRow] = []
    for model in models:
        result = scheduler.run(model)
        rows.append(
            UtilizationRow(
                workload=model.name,
                utilization=result.utilization,
                cycles=result.cycles,
                macs=result.macs,
            )
        )
    return rows
