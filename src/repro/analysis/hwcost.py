"""FPGA hardware-resource cost model (Fig. 18).

The paper synthesizes sNPU on FPGA and reports that the extensions cost
"only an additional 1% of RAM resources (S_Spad), with negligible impact
on LUTs and FFs", while the TrustZone NPU's IOMMU "involves complex IO
page table walking which consumes more hardware resources".

We cannot synthesize RTL here, so this is an analytic structure-count
model: every security structure is decomposed into registers (FFs),
comparators/FSM logic (LUTs) and storage bits (RAM), using standard
per-structure FPGA cost rules.  The *ordering* and *relative magnitude*
of the bars — S_Spad ≈ 1% RAM, S_Reg/S_NoC ≈ 0.1% logic, IOMMU several
times larger — follow from structure sizes, not tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.npu.config import NPUConfig


@dataclass
class ResourceCost:
    """FPGA resources of one block."""

    name: str
    luts: float
    ffs: float
    ram_kbits: float

    def __add__(self, other: "ResourceCost") -> "ResourceCost":
        return ResourceCost(
            name=f"{self.name}+{other.name}",
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            ram_kbits=self.ram_kbits + other.ram_kbits,
        )

    def relative_to(self, base: "ResourceCost") -> Dict[str, float]:
        return {
            "luts": self.luts / base.luts if base.luts else 0.0,
            "ffs": self.ffs / base.ffs if base.ffs else 0.0,
            "ram": self.ram_kbits / base.ram_kbits if base.ram_kbits else 0.0,
        }


# Per-structure FPGA cost rules (classic Xilinx 7-series heuristics).
_LUT_PER_PE = 550.0  # one fp32 MAC: DSP slices + alignment/normalize logic
_FF_PER_PE = 280.0  # weight register + operand/result pipeline stages
_LUT_PER_64B_COMPARATOR = 40.0  # masked 64-bit range match
_LUT_PER_CAM_BIT = 1.5  # content-addressable match logic
_FF_PER_REG_BIT = 1.0


def baseline_npu_cost(config: NPUConfig) -> ResourceCost:
    """One unprotected Gemmini-style tile (PE array + scratchpads + DMA)."""
    pes = config.peak_macs_per_cycle
    spad_bits = (config.spad_bytes + config.acc_bytes_total) * 8
    control_luts = 22_000.0  # DMA engine, sequencer, RoCC interface
    control_ffs = 16_000.0
    return ResourceCost(
        name="baseline",
        luts=pes * _LUT_PER_PE + control_luts,
        ffs=pes * _FF_PER_PE + control_ffs,
        ram_kbits=spad_bits / 1024.0,
    )


def s_reg_cost(config: NPUConfig, checking: int = 8, translation: int = 16) -> ResourceCost:
    """NPU Guarder translation/checking registers (S_Reg).

    Mobile SoCs expose a 40-bit physical space; range sizes fit 32 bits.
    """
    check_bits = checking * (40 + 40 + 4)  # base, bound, perm/world
    xlat_bits = translation * (40 + 40 + 32)  # vbase, pbase, size
    comparators = checking * 2 + translation * 2
    return ResourceCost(
        name="S_Reg",
        luts=comparators * _LUT_PER_64B_COMPARATOR,
        ffs=(check_bits + xlat_bits) * _FF_PER_REG_BIT,
        ram_kbits=0.0,
    )


def s_spad_cost(config: NPUConfig) -> ResourceCost:
    """ID-based scratchpad isolation (S_Spad): one ID bit per 128-bit
    line, two per 512-bit accumulator line, plus the access-rule logic."""
    id_bits = config.spad_lines * 1 + config.acc_lines * 2
    rule_luts = 600.0  # per-bank compare/update of the ID state
    return ResourceCost(
        name="S_Spad",
        luts=rule_luts,
        ffs=64.0,
        ram_kbits=id_bits / 1024.0,
    )


def s_noc_cost(config: NPUConfig) -> ResourceCost:
    """Peephole router extension (S_NoC): auth-ID compare + FSM + lock."""
    per_router_luts = 450.0
    per_router_ffs = 320.0
    return ResourceCost(
        name="S_NoC",
        luts=per_router_luts,
        ffs=per_router_ffs,
        ram_kbits=0.25,  # route-lock map
    )


def snpu_extension_cost(config: NPUConfig) -> ResourceCost:
    total = s_reg_cost(config) + s_spad_cost(config) + s_noc_cost(config)
    return ResourceCost("sNPU", total.luts, total.ffs, total.ram_kbits)


def multi_domain_spad_cost(config: NPUConfig, domain_bits: int) -> ResourceCost:
    """S_Spad generalized to ``domain_bits``-wide IDs (§VII).

    "Increasing the ID-bits for each NPU core allows for more secure
    domains, but it comes with the tradeoff of increased hardware resource
    usage, particularly in the scratchpad."  The RAM overhead scales
    linearly with the ID width; the rule logic grows with comparator width.
    """
    id_bits = (config.spad_lines + 2 * config.acc_lines) * domain_bits
    rule_luts = 600.0 + 150.0 * (domain_bits - 1)
    return ResourceCost(
        name=f"S_Spad-{domain_bits}b",
        luts=rule_luts,
        ffs=64.0 * domain_bits,
        ram_kbits=id_bits / 1024.0,
    )


def iommu_cost(config: NPUConfig, iotlb_entries: int = 32) -> ResourceCost:
    """The TrustZone NPU's enhanced IOMMU: IOTLB CAM + page walker + PWC."""
    tag_bits = 52 + 2  # vpage tag + NS/valid
    data_bits = 52 + 4  # ppage + perms
    cam_luts = iotlb_entries * tag_bits * _LUT_PER_CAM_BIT
    tlb_ffs = iotlb_entries * (tag_bits + data_bits)
    walker_luts = 6_500.0  # multi-level walk FSM + request muxing
    walker_ffs = 4_000.0
    walk_cache_kbits = 32.0
    return ResourceCost(
        name="IOMMU",
        luts=cam_luts + walker_luts,
        ffs=tlb_ffs + walker_ffs,
        ram_kbits=walk_cache_kbits,
    )


def hardware_cost_report(config: NPUConfig = None) -> List[Dict[str, object]]:
    """Fig. 18 rows: extension cost as a fraction of the baseline NPU."""
    config = config or NPUConfig.paper_default()
    base = baseline_npu_cost(config)
    rows = []
    for cost in (
        s_reg_cost(config),
        s_spad_cost(config),
        s_noc_cost(config),
        snpu_extension_cost(config),
        iommu_cost(config),
    ):
        rel = cost.relative_to(base)
        rows.append(
            {
                "component": cost.name,
                "luts": cost.luts,
                "ffs": cost.ffs,
                "ram_kbits": cost.ram_kbits,
                "luts_pct": 100.0 * rel["luts"],
                "ffs_pct": 100.0 * rel["ffs"],
                "ram_pct": 100.0 * rel["ram"],
            }
        )
    return rows
