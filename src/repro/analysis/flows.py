"""Flow analysis: per-request latency decomposition reports.

Consumes the :class:`~repro.telemetry.flow.FlowTracker`'s records and
folds them into a :class:`FlowReport` — the object behind ``repro flows``:

* **Decomposition** — end-to-end latency split into queueing / service /
  security cycles, in total and per stage, exactly (the records carry
  rational components that sum to the end-to-end latency by
  construction, so the report's totals do too).
* **Stage percentiles** — p50/p95/p99 of each stage's span duration via
  the telemetry :class:`~repro.telemetry.metrics.Histogram`.
* **Per-layer critical paths** — flows grouped by issuing context (the
  NPU layer name); each group reports its dominant ("critical") stage.
* **Top-K slowest flows** — with their full stage breakdowns, the
  drill-down view for "where did the slow requests spend their time".
* **Slowest-decile security share** — the fraction of the slowest 10 %
  of flows' time spent in security checks; under an IOTLB-4 IOMMU the
  walk time dominates this decile, under the Guarder it is exactly zero
  (the Fig. 13 mechanism difference, per-request).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.flow import FlowRecord
from repro.telemetry.metrics import Histogram

_ZERO = Fraction(0)

#: Percentiles reported per stage.
PERCENTILES = (50, 95, 99)


@dataclass
class StageStat:
    """Aggregate over every span of one stage name."""

    stage: str
    count: int = 0
    queueing: Fraction = _ZERO
    service: Fraction = _ZERO
    security: Fraction = _ZERO
    histogram: Histogram = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.histogram is None:
            self.histogram = Histogram(f"flow.stage.{self.stage}")

    @property
    def total(self) -> Fraction:
        return self.queueing + self.service + self.security

    def add(self, queueing: Fraction, service: Fraction,
            security: Fraction) -> None:
        self.count += 1
        self.queueing += queueing
        self.service += service
        self.security += security
        self.histogram.observe(float(queueing + service + security))

    def percentiles(self) -> Dict[str, float]:
        return {f"p{p}": self.histogram.percentile(p) for p in PERCENTILES}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "count": self.count,
            "total": float(self.total),
            "queueing": float(self.queueing),
            "service": float(self.service),
            "security": float(self.security),
            **self.percentiles(),
        }


@dataclass
class LayerCriticalPath:
    """Stage totals of one issuing context, with its dominant stage."""

    context: str
    flows: int
    total: Fraction
    stage_totals: Dict[str, Fraction]

    @property
    def critical_stage(self) -> str:
        if not self.stage_totals:
            return ""
        return max(self.stage_totals.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "context": self.context,
            "flows": self.flows,
            "total": float(self.total),
            "critical_stage": self.critical_stage,
            "stages": {k: float(v) for k, v in self.stage_totals.items()},
        }


class FlowReport:
    """Latency-decomposition report over a set of flow records."""

    def __init__(
        self,
        records: Sequence[FlowRecord],
        top: int = 10,
        stage: Optional[str] = None,
    ):
        #: Stage-name filter: when set, only flows containing that stage
        #: are reported, and the top-K ranking orders by that stage's span.
        self.stage_filter = stage
        if stage is not None:
            records = [r for r in records if r.stage(stage) is not None]
        self.records = list(records)
        self.top = top
        self.stages: Dict[str, StageStat] = {}
        self.layers: Dict[str, LayerCriticalPath] = {}
        self.total = _ZERO
        self.queueing = _ZERO
        self.service = _ZERO
        self.security = _ZERO
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        layer_stage: Dict[str, Dict[str, Fraction]] = {}
        layer_flows: Dict[str, int] = {}
        layer_total: Dict[str, Fraction] = {}
        for record in self.records:
            self.total += record.total
            for span in record.stages:
                stat = self.stages.get(span.stage)
                if stat is None:
                    stat = self.stages[span.stage] = StageStat(span.stage)
                stat.add(span.queueing, span.service, span.security)
                self.queueing += span.queueing
                self.service += span.service
                self.security += span.security
                ctx = record.context or record.kind
                bucket = layer_stage.setdefault(ctx, {})
                bucket[span.stage] = bucket.get(span.stage, _ZERO) + span.total
            ctx = record.context or record.kind
            layer_flows[ctx] = layer_flows.get(ctx, 0) + 1
            layer_total[ctx] = layer_total.get(ctx, _ZERO) + record.total
        for ctx, totals in layer_stage.items():
            self.layers[ctx] = LayerCriticalPath(
                context=ctx,
                flows=layer_flows.get(ctx, 0),
                total=layer_total.get(ctx, _ZERO),
                stage_totals=dict(sorted(totals.items())),
            )

    # ------------------------------------------------------------------
    def _rank_key(self, record: FlowRecord) -> Fraction:
        if self.stage_filter is not None:
            span = record.stage(self.stage_filter)
            return span.total if span is not None else _ZERO
        return record.total

    def slowest(self, k: Optional[int] = None) -> List[FlowRecord]:
        """The *k* slowest flows (by total, or by the filtered stage)."""
        k = self.top if k is None else k
        ranked = sorted(
            self.records, key=lambda r: (-self._rank_key(r), r.flow_id)
        )
        return ranked[:k]

    def slowest_decile(self) -> List[FlowRecord]:
        """The slowest 10 % of flows (at least one when any exist)."""
        if not self.records:
            return []
        n = max(1, len(self.records) // 10)
        return self.slowest(n)

    def decile_security_share(self) -> float:
        """Security-cycle share of the slowest decile's total time."""
        decile = self.slowest_decile()
        total = sum((r.total for r in decile), _ZERO)
        if total == _ZERO:
            return 0.0
        sec = sum((r.security_cycles for r in decile), _ZERO)
        return float(sec / total)

    def decile_stage_totals(self) -> Dict[str, Fraction]:
        """Per-stage time totals over the slowest decile."""
        out: Dict[str, Fraction] = {}
        for record in self.slowest_decile():
            for span in record.stages:
                out[span.stage] = out.get(span.stage, _ZERO) + span.total
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        decile = self.slowest_decile()
        payload = {
            "flows": len(self.records),
            "stage_filter": self.stage_filter,
            "total_cycles": float(self.total),
            "queueing_cycles": float(self.queueing),
            "service_cycles": float(self.service),
            "security_cycles": float(self.security),
            "security_share": (
                float(self.security / self.total) if self.total else 0.0
            ),
            "stages": [
                self.stages[name].to_dict() for name in sorted(self.stages)
            ],
            "layers": [
                self.layers[name].to_dict() for name in sorted(self.layers)
            ],
            "slowest_decile": {
                "flows": len(decile),
                "security_share": self.decile_security_share(),
                "stages": {
                    k: float(v) for k, v in self.decile_stage_totals().items()
                },
            },
            "top": [r.to_dict() for r in self.slowest()],
        }
        return json.dumps(payload, indent=2, sort_keys=False)

    def _stage_rows(self) -> List[List[str]]:
        rows = []
        for name in sorted(self.stages):
            s = self.stages[name]
            pct = s.percentiles()
            rows.append([
                name, str(s.count), f"{float(s.total):.1f}",
                f"{float(s.queueing):.1f}", f"{float(s.service):.1f}",
                f"{float(s.security):.1f}", f"{pct['p50']:.1f}",
                f"{pct['p95']:.1f}", f"{pct['p99']:.1f}",
            ])
        return rows

    def _top_rows(self) -> List[List[str]]:
        rows = []
        for r in self.slowest():
            breakdown = " ".join(
                f"{s.stage}={float(s.total):.1f}" for s in r.stages
            )
            rows.append([
                str(r.flow_id), r.kind, r.context or "-", r.stream or "-",
                f"{float(r.total):.1f}", f"{float(r.security_cycles):.1f}",
                breakdown,
            ])
        return rows

    _STAGE_HEADER = ["stage", "count", "total", "queueing", "service",
                     "security", "p50", "p95", "p99"]
    _TOP_HEADER = ["flow", "kind", "context", "stream", "total",
                   "security", "stages"]
    _LAYER_HEADER = ["context", "flows", "total", "critical stage"]

    def _layer_rows(self) -> List[List[str]]:
        ranked = sorted(
            self.layers.values(), key=lambda l: (-l.total, l.context)
        )
        return [
            [l.context, str(l.flows), f"{float(l.total):.1f}",
             l.critical_stage]
            for l in ranked
        ]

    def to_table(self) -> str:
        def table(header: List[str], rows: List[List[str]]) -> List[str]:
            widths = [
                max(len(header[i]), *(len(r[i]) for r in rows))
                if rows else len(header[i])
                for i in range(len(header))
            ]
            fmt = "  ".join(f"{{:<{w}}}" for w in widths)
            lines = [fmt.format(*header), fmt.format(*["-" * w for w in widths])]
            lines += [fmt.format(*row) for row in rows]
            return lines

        lines = [
            f"flows: {len(self.records)}"
            + (f" (stage filter: {self.stage_filter})" if self.stage_filter else ""),
            f"total cycles: {float(self.total):.1f}  "
            f"(queueing {float(self.queueing):.1f}, "
            f"service {float(self.service):.1f}, "
            f"security {float(self.security):.1f})",
            f"slowest-decile security share: "
            f"{self.decile_security_share():.1%}",
            "",
            "Per-stage decomposition:",
        ]
        lines += table(self._STAGE_HEADER, self._stage_rows())
        lines += ["", "Per-layer critical paths:"]
        lines += table(self._LAYER_HEADER, self._layer_rows())
        lines += ["", f"Top {min(self.top, len(self.records))} slowest flows:"]
        lines += table(self._TOP_HEADER, self._top_rows())
        return "\n".join(lines) + "\n"

    def to_markdown(self) -> str:
        def md(header: List[str], rows: List[List[str]]) -> List[str]:
            lines = [
                "| " + " | ".join(header) + " |",
                "| " + " | ".join("---" for _ in header) + " |",
            ]
            lines += ["| " + " | ".join(row) + " |" for row in rows]
            return lines

        lines = [
            "# Flow latency decomposition",
            "",
            f"- flows: {len(self.records)}"
            + (f" (stage filter: `{self.stage_filter}`)" if self.stage_filter else ""),
            f"- total cycles: {float(self.total):.1f}",
            f"- queueing / service / security: "
            f"{float(self.queueing):.1f} / {float(self.service):.1f} / "
            f"{float(self.security):.1f}",
            f"- slowest-decile security share: "
            f"{self.decile_security_share():.1%}",
            "",
            "## Per-stage decomposition",
            "",
        ]
        lines += md(self._STAGE_HEADER, self._stage_rows())
        lines += ["", "## Per-layer critical paths", ""]
        lines += md(self._LAYER_HEADER, self._layer_rows())
        lines += ["", f"## Top {min(self.top, len(self.records))} slowest flows", ""]
        lines += md(self._TOP_HEADER, self._top_rows())
        return "\n".join(lines) + "\n"

    def render(self, fmt: str) -> str:
        if fmt == "json":
            return self.to_json()
        if fmt == "md":
            return self.to_markdown()
        return self.to_table()


def verify_decomposition(records: Sequence[FlowRecord]) -> None:
    """Assert the exactness invariant over *records* (raises on breach).

    For every completed flow the sum of per-stage queueing + service +
    security components must equal the end-to-end latency exactly —
    the property the property-test suite checks over the model zoo ×
    protection configs.
    """
    for record in records:
        parts = sum((s.total for s in record.stages), _ZERO)
        if parts != record.total:
            raise AssertionError(
                f"flow {record.flow_id}: stage components sum to {parts}, "
                f"end-to-end latency is {record.total}"
            )
