"""Static analyses: FLOPS utilization, FPGA resource cost, TCB accounting."""

from repro.analysis.utilization import utilization_report, UtilizationRow
from repro.analysis.hwcost import (
    ResourceCost,
    baseline_npu_cost,
    snpu_extension_cost,
    iommu_cost,
    hardware_cost_report,
)
from repro.analysis.tcb import tcb_report, TCBComponent, count_package_loc

__all__ = [
    "utilization_report",
    "UtilizationRow",
    "ResourceCost",
    "baseline_npu_cost",
    "snpu_extension_cost",
    "iommu_cost",
    "hardware_cost_report",
    "tcb_report",
    "TCBComponent",
    "count_package_loc",
    "Diagnosis",
    "DiagnosisPart",
    "diagnose_profiles",
    "diagnose_serve",
    "diagnose_archived",
    "diagnose_bench",
]

_DIAGNOSE = {
    "Diagnosis", "DiagnosisPart", "diagnose_profiles", "diagnose_serve",
    "diagnose_archived", "diagnose_bench",
}


def __getattr__(name):
    # Lazy: repro.analysis.diagnose pulls in the store layer, which the
    # static analyses above don't need.
    if name in _DIAGNOSE:
        from repro.analysis import diagnose

        return getattr(diagnose, name)
    raise AttributeError(name)
