"""Cycle-attribution reports: per-layer bound analysis, overhead
decomposition diffs, flamegraph export and host-side profiling.

Built on :mod:`repro.telemetry.profiler`: one :func:`profile_model` call
runs a workload inside a fresh telemetry scope and folds the profiler's
exact per-layer ledger into a :class:`ModelProfile` — the report object
behind ``repro profile``.

* **Attribution exactness** — every report keeps the profiler's rational
  cycle values; ``sum(categories) == total`` holds bit-for-bit, and a
  :class:`ProfileDiff`'s per-mechanism deltas sum *exactly* to the
  end-to-end overhead between two protection modes (the decomposition
  corroborating Fig. 13/14/16).
* **Bound analysis** — a layer is compute-bound when PE cycles dominate
  its exposed DMA time; the double-buffer overlap efficiency is the
  fraction of DMA busy time hidden under compute.
* **Flamegraph export** — :meth:`ModelProfile.to_folded` emits folded
  stacks (``task;root;leaf <cycles>``) consumable by ``flamegraph.pl`` or
  https://www.speedscope.app.
* **Host profiling** — :func:`profile_host` cProfiles the simulator
  itself and reports the Python hot loops (``repro profile --host``).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional

from repro.soc import SoC, SoCConfig
from repro import telemetry
from repro.telemetry.profiler import (
    CATEGORIES,
    RunProfile,
    category_root,
    parse_fraction,
)
from repro.workloads.model import ModelGraph

_ZERO = Fraction(0)

#: Category-tree roots counted as exposed memory time in bound analysis.
_MEMORY_ROOTS = ("dma",)


def _encode(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


@dataclass
class LayerReport:
    """One layer's attribution plus derived overlap/bound analysis."""

    name: str
    index: int
    cycles: Fraction
    parts: Dict[str, Fraction]
    #: "compute" | "memory" | "flush"
    bound: str
    #: Fraction of DMA busy time hidden under compute (0..1; 1 = perfect
    #: double buffering).  None when the layer moved no data.
    overlap_efficiency: Optional[float]
    dma_busy: float = 0.0
    compute_busy: float = 0.0
    macs: float = 0.0

    def exposed(self, roots=_MEMORY_ROOTS) -> Fraction:
        return sum(
            (v for k, v in self.parts.items() if category_root(k) in roots),
            _ZERO,
        )


@dataclass
class ModelProfile:
    """The full cycle-attribution report of one workload run."""

    task: str
    protection: str
    mode: str  # "analytic" | "detailed"
    secure: bool
    total: Fraction
    categories: Dict[str, Fraction]
    counts: Dict[str, int]
    layers: List[LayerReport]
    #: RunResult.cycles as the simulator reported it (float path).
    run_cycles: float = 0.0
    #: Wall-clock seconds the host spent simulating.
    host_seconds: float = 0.0
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def by_root(self) -> Dict[str, Fraction]:
        out: Dict[str, Fraction] = {}
        for category, cycles in self.categories.items():
            root = category_root(category)
            out[root] = out.get(root, _ZERO) + cycles
        return out

    def share(self, category: str) -> float:
        if self.total == 0:
            return 0.0
        return float(self.categories.get(category, _ZERO) / self.total)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-portable view; exact rationals ride along as "num/den"."""
        return {
            "task": self.task,
            "protection": self.protection,
            "mode": self.mode,
            "secure": self.secure,
            "total_cycles": float(self.total),
            "total_cycles_exact": _encode(self.total),
            "run_cycles": self.run_cycles,
            "host_seconds": self.host_seconds,
            "categories": {
                name: float(value)
                for name, value in sorted(self.categories.items())
            },
            "categories_exact": {
                name: _encode(value)
                for name, value in sorted(self.categories.items())
            },
            "counts": dict(sorted(self.counts.items())),
            "layers": [
                {
                    "name": layer.name,
                    "index": layer.index,
                    "cycles": float(layer.cycles),
                    "bound": layer.bound,
                    "overlap_efficiency": layer.overlap_efficiency,
                    "dma_busy": layer.dma_busy,
                    "compute_busy": layer.compute_busy,
                    "parts": {
                        k: float(v) for k, v in sorted(layer.parts.items())
                    },
                }
                for layer in self.layers
            ],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_folded(self) -> str:
        """Folded stacks for flamegraph.pl / speedscope.

        One line per leaf category: ``task;root;leaf cycles`` (integer-
        rounded, as flamegraph collectors expect sample counts).
        """
        lines = []
        for category in CATEGORIES:
            cycles = self.categories.get(category)
            if not cycles:
                continue
            stack = category.replace(".", ";", 1)
            lines.append(f"{self.task};{stack} {round(float(cycles))}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_markdown(self, top_layers: int = 8) -> str:
        """Human-facing report: decomposition table + hottest layers."""
        title = (
            f"## Cycle attribution: {self.task} on {self.protection} "
            f"({self.mode}{', secure' if self.secure else ''})"
        )
        lines = [
            title,
            "",
            f"Total: **{float(self.total):,.0f} cycles** "
            f"(host {self.host_seconds:.2f} s)",
            "",
            "| category | cycles | share |",
            "|---|---:|---:|",
        ]
        for category in CATEGORIES:
            cycles = self.categories.get(category, _ZERO)
            if cycles == 0:
                continue
            lines.append(
                f"| {category} | {float(cycles):,.0f} "
                f"| {self.share(category):.2%} |"
            )
        lines.append(
            f"| **total** | **{float(self.total):,.0f}** | 100.00% |"
        )
        if self.layers:
            hottest = sorted(
                self.layers, key=lambda l: l.cycles, reverse=True
            )[:top_layers]
            lines += [
                "",
                f"Hottest layers (of {len(self.layers)}):",
                "",
                "| layer | cycles | bound | overlap |",
                "|---|---:|---|---:|",
            ]
            for layer in hottest:
                overlap = (
                    f"{layer.overlap_efficiency:.1%}"
                    if layer.overlap_efficiency is not None
                    else "-"
                )
                lines.append(
                    f"| {layer.name} | {float(layer.cycles):,.0f} "
                    f"| {layer.bound} | {overlap} |"
                )
        if self.counts:
            shown = ", ".join(
                f"{k}={v:,}" for k, v in sorted(self.counts.items())
            )
            lines += ["", f"Events: {shown}"]
        for note in self.notes:
            lines += ["", f"> {note}"]
        return "\n".join(lines) + "\n"

    def to_table(self) -> str:
        """Plain-terminal rendering of the decomposition."""
        lines = [
            f"{self.task} on {self.protection} ({self.mode}"
            f"{', secure' if self.secure else ''}): "
            f"{float(self.total):,.0f} cycles",
            "",
        ]
        width = max(
            (len(c) for c in self.categories if self.categories[c] != 0),
            default=8,
        )
        for category in CATEGORIES:
            cycles = self.categories.get(category, _ZERO)
            if cycles == 0:
                continue
            lines.append(
                f"  {category.ljust(width)}  {float(cycles):>16,.0f}  "
                f"{self.share(category):>7.2%}"
            )
        lines.append(
            f"  {'total'.ljust(width)}  {float(self.total):>16,.0f}  100.00%"
        )
        return "\n".join(lines) + "\n"


def from_dict(payload: Dict[str, Any]) -> ModelProfile:
    """Rebuild a :class:`ModelProfile` from :meth:`ModelProfile.to_dict`.

    Exact rationals are restored from the ``*_exact`` companions, so a
    profile survives a JSON round trip with its invariants intact.
    """
    exact = payload.get("categories_exact") or payload.get("categories") or {}
    categories = {k: parse_fraction(v) for k, v in exact.items()}
    total = parse_fraction(
        payload.get("total_cycles_exact", payload.get("total_cycles", 0))
    )
    layers = [
        LayerReport(
            name=row["name"],
            index=row["index"],
            cycles=parse_fraction(row["cycles"]),
            parts={k: parse_fraction(v) for k, v in row["parts"].items()},
            bound=row["bound"],
            overlap_efficiency=row.get("overlap_efficiency"),
            dma_busy=row.get("dma_busy", 0.0),
            compute_busy=row.get("compute_busy", 0.0),
        )
        for row in payload.get("layers", [])
    ]
    return ModelProfile(
        task=payload["task"],
        protection=payload["protection"],
        mode=payload["mode"],
        secure=bool(payload.get("secure")),
        total=total,
        categories=categories,
        counts=dict(payload.get("counts", {})),
        layers=layers,
        run_cycles=payload.get("run_cycles", 0.0),
        host_seconds=payload.get("host_seconds", 0.0),
        notes=list(payload.get("notes", ())),
    )


# ----------------------------------------------------------------------
# Building a profile
# ----------------------------------------------------------------------
def _layer_report(attribution) -> LayerReport:
    exposed_dma = sum(
        (
            v
            for k, v in attribution.parts.items()
            if category_root(k) in _MEMORY_ROOTS
        ),
        _ZERO,
    )
    flush = sum(
        (
            v
            for k, v in attribution.parts.items()
            if category_root(k) == "flush"
        ),
        _ZERO,
    )
    compute = attribution.parts.get("pe.compute", _ZERO)
    if flush > compute and flush > exposed_dma:
        bound = "flush"
    elif compute >= exposed_dma:
        bound = "compute"
    else:
        bound = "memory"
    dma_busy = float(attribution.stats.get("dma_busy", 0.0))
    overlap: Optional[float] = None
    if dma_busy > 0:
        hidden = dma_busy - float(exposed_dma)
        overlap = min(max(hidden / dma_busy, 0.0), 1.0)
    return LayerReport(
        name=attribution.name,
        index=attribution.index,
        cycles=attribution.total,
        parts=dict(attribution.parts),
        bound=bound,
        overlap_efficiency=overlap,
        dma_busy=dma_busy,
        compute_busy=float(attribution.stats.get("compute_busy", 0.0)),
        macs=float(attribution.stats.get("macs", 0.0)),
    )


def build_profile(
    run: RunProfile,
    protection: str,
    secure: bool = False,
    counts: Optional[Dict[str, int]] = None,
    run_cycles: float = 0.0,
    host_seconds: float = 0.0,
) -> ModelProfile:
    """Fold one profiler run ledger into a report object."""
    return ModelProfile(
        task=run.task,
        protection=protection,
        mode=run.mode,
        secure=secure,
        total=run.total(),
        categories=run.by_category(),
        counts=dict(counts or {}),
        layers=[_layer_report(a) for a in run.layers],
        run_cycles=run_cycles,
        host_seconds=host_seconds,
    )


def profile_model(
    model: ModelGraph,
    protection: str = "snpu",
    detailed: bool = True,
    secure: bool = False,
    flush: Optional[str] = None,
) -> ModelProfile:
    """Run *model* under *protection* and return its attribution report.

    Runs inside a fresh ``telemetry.scoped`` block, so ambient telemetry
    state is untouched.
    """
    started = time.perf_counter()
    with telemetry.scoped(trace=False) as tel:
        soc = SoC(SoCConfig(protection=protection))
        handle = soc.submit(model, secure=secure)
        try:
            result = soc.run(handle, detailed=detailed, flush=flush)
        finally:
            soc.release(handle)
        runs = tel.profiler.runs
        if not runs:  # pragma: no cover - profiler always enabled in scope
            raise RuntimeError("profiler recorded no runs")
        run = runs[-1]
        counts = dict(tel.profiler.counts)
    host_seconds = time.perf_counter() - started
    return build_profile(
        run,
        protection=protection,
        secure=secure,
        counts=counts,
        run_cycles=result.cycles,
        host_seconds=host_seconds,
    )


# ----------------------------------------------------------------------
# Overhead decomposition between two runs
# ----------------------------------------------------------------------
@dataclass
class ProfileDiff:
    """Per-mechanism overhead decomposition between two profiles.

    ``deltas`` are exact rationals (``other - base`` per category), so
    ``sum(deltas.values()) == total_delta`` bit-for-bit — the mechanism
    deltas *are* the end-to-end overhead, fully decomposed.
    """

    base: ModelProfile
    other: ModelProfile
    deltas: Dict[str, Fraction]
    total_delta: Fraction

    @property
    def overhead(self) -> float:
        """Relative end-to-end overhead of *other* vs *base*."""
        if self.base.total == 0:
            return 0.0
        return float(self.total_delta / self.base.total)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task": self.other.task,
            "base": self.base.protection,
            "other": self.other.protection,
            "base_cycles": float(self.base.total),
            "other_cycles": float(self.other.total),
            "total_delta": float(self.total_delta),
            "total_delta_exact": _encode(self.total_delta),
            "overhead": self.overhead,
            "deltas": {
                k: float(v) for k, v in sorted(self.deltas.items())
            },
            "deltas_exact": {
                k: _encode(v) for k, v in sorted(self.deltas.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_table(self, markdown: bool = False) -> str:
        head = (
            f"{self.other.task}: {self.other.protection} vs "
            f"{self.base.protection} — "
            f"{float(self.total_delta):+,.0f} cycles "
            f"({self.overhead:+.3%} end-to-end)"
        )
        rows = [
            (category, self.deltas[category])
            for category in CATEGORIES
            if self.deltas.get(category, _ZERO) != 0
        ]
        if markdown:
            lines = [
                f"## {head}",
                "",
                "| mechanism | Δ cycles | share of overhead |",
                "|---|---:|---:|",
            ]
            for category, delta in rows:
                share = (
                    float(delta / self.total_delta)
                    if self.total_delta
                    else 0.0
                )
                lines.append(
                    f"| {category} | {float(delta):+,.0f} | {share:+.1%} |"
                )
            lines.append(
                f"| **total** | **{float(self.total_delta):+,.0f}** "
                f"| +100.0% |"
            )
            return "\n".join(lines) + "\n"
        lines = [head, ""]
        width = max((len(c) for c, _d in rows), default=8)
        for category, delta in rows:
            share = (
                float(delta / self.total_delta) if self.total_delta else 0.0
            )
            lines.append(
                f"  {category.ljust(width)}  {float(delta):>+16,.0f}  "
                f"{share:>+8.1%}"
            )
        lines.append(
            f"  {'total'.ljust(width)}  {float(self.total_delta):>+16,.0f}  "
            f"{'+100.0%':>8}"
        )
        return "\n".join(lines) + "\n"


def diff_profiles(base: ModelProfile, other: ModelProfile) -> ProfileDiff:
    """Exact per-category decomposition of ``other - base``."""
    deltas: Dict[str, Fraction] = {}
    for category in set(base.categories) | set(other.categories):
        delta = other.categories.get(category, _ZERO) - base.categories.get(
            category, _ZERO
        )
        if delta != 0:
            deltas[category] = delta
    return ProfileDiff(
        base=base,
        other=other,
        deltas=deltas,
        total_delta=other.total - base.total,
    )


# ----------------------------------------------------------------------
# Host-side (wall-clock) profiling of the simulator itself
# ----------------------------------------------------------------------
def profile_host(
    model: ModelGraph,
    protection: str = "snpu",
    detailed: bool = True,
    secure: bool = False,
    top: int = 15,
) -> str:
    """cProfile one simulated run; returns the hot-function report.

    This profiles the *simulator* (Python wall-clock), not the simulated
    hardware — the tool for finding host hot loops before optimizing.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        soc = SoC(SoCConfig(protection=protection))
        soc.run_model(model, secure=secure, detailed=detailed)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    return buffer.getvalue()
