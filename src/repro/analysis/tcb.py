"""TCB size accounting (§VI-F).

The paper: "The NPU Monitor code consists of only 12,854 LoC, while the
cryptographic code accounts for 10,781 LoC.  The second largest function
code is the trusted allocator, which encompasses 1,564 LoC.  Comparing
with the entire NPU software stack including the ML framework (e.g.,
330,597 LoC for TensorFlow, 309,366 LoC for ONNX) and NPU driver (e.g.,
631,063 LoC for NVDLA), the total TCB size for NPU Monitor is minor."

We report both the paper's numbers and this reproduction's own measured
Monitor size (``repro.monitor`` package), making the same argument: the
trusted module is orders of magnitude smaller than the untrusted stack.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class TCBComponent:
    name: str
    loc: int
    trusted: bool


#: The paper's reported line counts (§VI-F).
PAPER_TCB: List[TCBComponent] = [
    TCBComponent("NPU Monitor (total)", 12_854, trusted=True),
    TCBComponent("  cryptographic code", 10_781, trusted=True),
    TCBComponent("  trusted allocator", 1_564, trusted=True),
    TCBComponent("TensorFlow (untrusted)", 330_597, trusted=False),
    TCBComponent("ONNX Runtime (untrusted)", 309_366, trusted=False),
    TCBComponent("NVDLA driver (untrusted)", 631_063, trusted=False),
]


def count_package_loc(package) -> Dict[str, int]:
    """Count non-blank source lines per module file of a package."""
    root = os.path.dirname(package.__file__)
    out: Dict[str, int] = {}
    for name in sorted(os.listdir(root)):
        if not name.endswith(".py"):
            continue
        path = os.path.join(root, name)
        with open(path) as fh:
            loc = sum(1 for line in fh if line.strip())
        out[name] = loc
    return out


def tcb_report() -> Dict[str, object]:
    """Paper TCB numbers plus this reproduction's measured monitor size."""
    import repro.monitor as monitor_pkg
    import repro.driver as driver_pkg
    import repro.workloads as workloads_pkg

    monitor_loc = count_package_loc(monitor_pkg)
    untrusted_loc = {
        **{f"driver/{k}": v for k, v in count_package_loc(driver_pkg).items()},
        **{f"workloads/{k}": v for k, v in count_package_loc(workloads_pkg).items()},
    }
    return {
        "paper": PAPER_TCB,
        "repro_monitor_loc": monitor_loc,
        "repro_monitor_total": sum(monitor_loc.values()),
        "repro_untrusted_loc": untrusted_loc,
        "repro_untrusted_total": sum(untrusted_loc.values()),
        "paper_trusted_total": sum(c.loc for c in PAPER_TCB if c.trusted and not c.name.startswith(" ")),
        "paper_untrusted_total": sum(c.loc for c in PAPER_TCB if not c.trusted),
    }
