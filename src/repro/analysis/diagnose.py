"""Causal cross-run diagnosis: exact delta attribution between two runs.

The archive (``repro.store``) can *flag* that two runs differ and the
profiler (``repro.telemetry.profiler``) can decompose *one* run; this
module explains the difference.  Given any two runs — two archived
run_ids, a BENCH file vs its archived history median, or two live
configurations run back-to-back — :class:`Diagnosis` decomposes the
end-to-end cycle/latency delta into **Fraction-exact parts that sum to
the total by construction**, then ranks them into a plain-language
verdict table ("dma.stall.iotlb +18% of delta, concentrated in layers
4–7").

Exactness invariant
-------------------

``sum(part.delta for part in parts) == total_b - total_a`` holds
bit-for-bit (:meth:`Diagnosis.verify` raises :class:`DiagnosisError`
otherwise, and every builder calls it).  Parts are the *decomposition*;
flow-stage percentile shifts, per-tenant p99/SLA deltas, audit deny
deltas and attack detection-latency changes ride along as context
sections that deliberately do **not** participate in the sum.

Determinism contract
--------------------

A diagnosis contains only quantities derived from seeded simulation or
archived canonical rows — no wall-clock, no hostname, no environment —
so the same pair diagnosed twice renders byte-identical output in every
format (the CI ``diagnose-smoke`` job ``cmp``'s two JSON dumps).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DiagnosisError, StoreError
from repro.store.store import RunStore, numeric
from repro.telemetry.profiler import CATEGORIES, parse_fraction

_ZERO = Fraction(0)

#: Verdict thresholds on a part's share of the end-to-end delta.
_DOMINATES = Fraction(1, 2)
_DRIVES = Fraction(3, 20)
#: A category delta is "concentrated" when a strict sub-span of layers
#: carries *more than* this share of it (strict, so a perfectly uniform
#: spread never counts as concentrated).
_CONCENTRATION = Fraction(3, 4)

#: Fallback end-to-end metrics for archived runs without an exact
#: category tree or serve cycle decomposition (first present in both
#: runs wins).
PRIMARY_METRICS = (
    "profile.total_cycles",
    "run.cycles",
    "serve.makespan_cycles",
    "serve.makespan_ms",
    "flows.total",
    "watch.completed",
    "audit.records",
    "attacks.total",
    "slo.alerts",
)


# ----------------------------------------------------------------------
# The diagnosis object
# ----------------------------------------------------------------------
@dataclass
class DiagnosisPart:
    """One exact component of the end-to-end delta."""

    name: str
    a: Fraction
    b: Fraction

    @property
    def delta(self) -> Fraction:
        return self.b - self.a


@dataclass
class Diagnosis:
    """An exact decomposition of the delta between two runs.

    ``parts`` sum bit-for-bit to ``total_b - total_a``; the remaining
    sections (flow shifts, tenant deltas, audit deltas, detections,
    scalars) are context, not addends.
    """

    kind: str  # "profile" | "archive" | "serve" | "bench"
    label_a: str
    label_b: str
    unit: str
    total_a: Fraction
    total_b: Fraction
    parts: List[DiagnosisPart]
    concentrations: Dict[str, str] = field(default_factory=dict)
    flow_shifts: List[Dict[str, Any]] = field(default_factory=list)
    tenant_deltas: List[Dict[str, Any]] = field(default_factory=list)
    audit_deltas: List[Dict[str, Any]] = field(default_factory=list)
    detections: List[Dict[str, Any]] = field(default_factory=list)
    scalars: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    # -- invariants ----------------------------------------------------
    @property
    def total_delta(self) -> Fraction:
        return self.total_b - self.total_a

    def verify(self) -> "Diagnosis":
        """Assert the exact-sum invariant (always a bug when it fails)."""
        parts_sum = sum((p.delta for p in self.parts), _ZERO)
        if parts_sum != self.total_delta:
            raise DiagnosisError(
                f"diagnosis parts sum {parts_sum} != end-to-end delta "
                f"{self.total_delta} ({self.label_a} vs {self.label_b})"
            )
        return self

    # -- ranking -------------------------------------------------------
    def share(self, part: DiagnosisPart) -> Optional[Fraction]:
        """Exact share of the end-to-end delta (None when the runs tied
        end-to-end — a share of zero would hide offsetting parts)."""
        if self.total_delta == 0:
            return None
        return part.delta / self.total_delta

    def ranked(self) -> List[DiagnosisPart]:
        """Parts by descending |delta| (name-ascending tiebreak)."""
        return sorted(self.parts, key=lambda p: (-abs(p.delta), p.name))

    def verdicts(self) -> List[str]:
        """Ranked plain-language explanation of the delta."""
        out: List[str] = []
        for part in self.ranked():
            if part.delta == 0:
                continue
            share = self.share(part)
            if share is None:
                clause = "offsetting part (no net end-to-end delta)"
            elif share >= _DOMINATES:
                clause = f"{_pct(share)} of delta — dominates the delta"
            elif share >= _DRIVES:
                clause = f"{_pct(share)} of delta — drives the delta"
            elif share < 0:
                clause = f"{_pct(share)} of delta — offsets the delta"
            else:
                clause = f"{_pct(share)} of delta — minor contributor"
            rel = ""
            if part.a != 0:
                rel = f" ({_pct(part.delta / part.a)} vs a)"
            where = self.concentrations.get(part.name)
            tail = f", concentrated in {where}" if where else ""
            out.append(
                f"{part.name} {_qty(part.delta)} {self.unit}{rel}: "
                f"{clause}{tail}"
            )
        if not out:
            out.append(
                f"no delta: {self.label_b} matches {self.label_a} exactly"
            )
        return out

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-portable view; exact rationals ride along as num/den."""
        ranked = self.ranked()
        return {
            "kind": self.kind,
            "a": self.label_a,
            "b": self.label_b,
            "unit": self.unit,
            "total": {
                "a": float(self.total_a),
                "b": float(self.total_b),
                "delta": float(self.total_delta),
                "a_exact": _encode(self.total_a),
                "b_exact": _encode(self.total_b),
                "delta_exact": _encode(self.total_delta),
                "pct": (
                    float(self.total_delta / self.total_a)
                    if self.total_a != 0 else None
                ),
            },
            "parts": [
                {
                    "name": p.name,
                    "a": float(p.a),
                    "b": float(p.b),
                    "delta": float(p.delta),
                    "a_exact": _encode(p.a),
                    "b_exact": _encode(p.b),
                    "delta_exact": _encode(p.delta),
                    "share": (
                        float(self.share(p))
                        if self.share(p) is not None else None
                    ),
                    "concentration": self.concentrations.get(p.name),
                }
                for p in ranked
            ],
            "flow_shifts": list(self.flow_shifts),
            "tenant_deltas": list(self.tenant_deltas),
            "audit_deltas": list(self.audit_deltas),
            "detections": list(self.detections),
            "scalars": list(self.scalars),
            "notes": list(self.notes),
            "verdicts": self.verdicts(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # -- rendering -----------------------------------------------------
    def render(self, fmt: str = "table") -> str:
        if fmt == "json":
            return self.to_json()
        if fmt == "md":
            return self._render_md()
        return self._render_table()

    def _headline(self) -> str:
        pct = (
            f", {_pct(Fraction(self.total_delta, self.total_a))}"
            if self.total_a != 0 else ""
        )
        return (
            f"end-to-end: {_num(float(self.total_a))} -> "
            f"{_num(float(self.total_b))} {self.unit} "
            f"({_qty(self.total_delta)}{pct})"
        )

    def _render_table(self) -> str:
        lines = [
            f"== diagnose[{self.kind}]: {self.label_a} -> {self.label_b} ==",
            self._headline(),
            "",
        ]
        ranked = [p for p in self.ranked() if p.delta != 0]
        if ranked:
            rows = [
                (
                    str(i + 1), p.name, _num(float(p.a)), _num(float(p.b)),
                    _qty(p.delta),
                    "-" if self.share(p) is None else _pct(self.share(p)),
                )
                for i, p in enumerate(ranked)
            ]
            lines += _columns(
                ("#", "part", "a", "b", "delta", "share"), rows
            )
            lines.append(
                "(parts sum exactly to the end-to-end delta: "
                f"{_encode(self.total_delta)} {self.unit})"
            )
        else:
            lines.append("(no part of the decomposition moved)")
        lines += ["", "verdicts:"]
        for i, verdict in enumerate(self.verdicts()):
            lines.append(f"  {i + 1}. {verdict}")
        lines += self._render_context()
        for note in self.notes:
            lines += ["", f"note: {note}"]
        return "\n".join(lines) + "\n"

    def _render_context(self) -> List[str]:
        lines: List[str] = []
        if self.flow_shifts:
            lines += ["", "flow-stage percentile shifts:"]
            rows = [
                (
                    s["stage"],
                    _num(s.get("p50_a")), _num(s.get("p50_b")),
                    _num(s.get("p95_a")), _num(s.get("p95_b")),
                    _num(s.get("p99_a")), _num(s.get("p99_b")),
                )
                for s in self.flow_shifts
            ]
            lines += _columns(
                ("stage", "p50 a", "p50 b", "p95 a", "p95 b",
                 "p99 a", "p99 b"),
                rows, indent="  ",
            )
        if self.tenant_deltas:
            lines += ["", "per-tenant deltas:"]
            rows = [
                (
                    t["tenant"], str(t.get("n_a", 0)), str(t.get("n_b", 0)),
                    _num(t.get("p99_ms_a")), _num(t.get("p99_ms_b")),
                    _num(t.get("p99_ms_delta")),
                    _num(t.get("sla_a")), _num(t.get("sla_b")),
                )
                for t in self.tenant_deltas
            ]
            lines += _columns(
                ("tenant", "n a", "n b", "p99 a", "p99 b", "Δp99",
                 "sla a", "sla b"),
                rows, indent="  ",
            )
        if self.audit_deltas:
            lines += ["", "audit deltas:"]
            rows = [
                (
                    a["kind"], str(a.get("denies_a", 0)),
                    str(a.get("denies_b", 0)),
                    "new denies" if a.get("new_denies") else "",
                )
                for a in self.audit_deltas
            ]
            lines += _columns(
                ("kind", "denies a", "denies b", ""), rows, indent="  "
            )
        if self.detections:
            lines += ["", "detection changes:"]
            rows = [
                (
                    d["protection"], d["attack"],
                    str(d.get("outcome_a", "-")), str(d.get("outcome_b", "-")),
                    _num(d.get("latency_a")), _num(d.get("latency_b")),
                )
                for d in self.detections
            ]
            lines += _columns(
                ("protection", "attack", "outcome a", "outcome b",
                 "latency a", "latency b"),
                rows, indent="  ",
            )
        if self.scalars:
            lines += ["", "other deltas:"]
            rows = [
                (
                    s["name"], _num(s.get("a")), _num(s.get("b")),
                    _num(s.get("delta")),
                )
                for s in self.scalars
            ]
            lines += _columns(("name", "a", "b", "delta"), rows, indent="  ")
        return lines

    def _render_md(self) -> str:
        lines = [
            f"## Diagnosis: {self.label_a} vs {self.label_b} ({self.kind})",
            "",
            self._headline(),
            "",
            "| # | part | a | b | delta | share |",
            "|---:|---|---:|---:|---:|---:|",
        ]
        for i, p in enumerate(pp for pp in self.ranked() if pp.delta != 0):
            share = self.share(p)
            lines.append(
                f"| {i + 1} | {p.name} | {_num(float(p.a))} "
                f"| {_num(float(p.b))} | {_qty(p.delta)} "
                f"| {'-' if share is None else _pct(share)} |"
            )
        lines += ["", "Verdicts:", ""]
        for verdict in self.verdicts():
            lines.append(f"1. {verdict}")
        for note in self.notes:
            lines += ["", f"> {note}"]
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def _encode(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _num(value: Optional[float]) -> str:
    if value is None:
        return "-"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.6g}"


def _qty(value: Fraction) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return f"{int(as_float):+,}"
    return f"{as_float:+,.6g}"


def _pct(share: Fraction) -> str:
    return f"{float(share):+.1%}"


def _columns(
    columns: Sequence[str],
    rows: List[Tuple[str, ...]],
    indent: str = "  ",
) -> List[str]:
    widths = [
        max(len(columns[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(columns))
    ]
    lines = [
        indent + "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            indent + "  ".join(v.ljust(w) for v, w in zip(row, widths))
        )
    return lines


def _category_order(names: Sequence[str]) -> List[str]:
    """Category-tree order first, unknown names sorted after."""
    known = [c for c in CATEGORIES if c in names]
    return known + sorted(set(names) - set(CATEGORIES))


# ----------------------------------------------------------------------
# Builders: live profiles
# ----------------------------------------------------------------------
def diagnose_profiles(a: Any, b: Any) -> Diagnosis:
    """Diagnose two :class:`~repro.analysis.profile.ModelProfile` runs.

    Parts are the per-category exact deltas (the same decomposition as
    :func:`~repro.analysis.profile.diff_profiles`); per-category layer
    concentration is computed when both runs attributed the same layer
    sequence.
    """
    names = _category_order(set(a.categories) | set(b.categories))
    parts = [
        DiagnosisPart(
            name=name,
            a=a.categories.get(name, _ZERO),
            b=b.categories.get(name, _ZERO),
        )
        for name in names
    ]
    parts = [p for p in parts if p.a != 0 or p.b != 0]
    concentrations: Dict[str, str] = {}
    for part in parts:
        if part.delta == 0:
            continue
        where = _layer_concentration(part.name, a.layers, b.layers)
        if where:
            concentrations[part.name] = where
    scalars = [
        {
            "name": f"count.{key}",
            "a": a.counts.get(key, 0),
            "b": b.counts.get(key, 0),
            "delta": b.counts.get(key, 0) - a.counts.get(key, 0),
        }
        for key in sorted(set(a.counts) | set(b.counts))
        if a.counts.get(key, 0) != b.counts.get(key, 0)
    ]
    notes = []
    if a.task != b.task:
        notes.append(f"comparing different workloads: {a.task} vs {b.task}")
    if a.mode != b.mode:
        notes.append(f"comparing different modes: {a.mode} vs {b.mode}")
    return Diagnosis(
        kind="profile",
        label_a=f"{a.task}:{a.protection}",
        label_b=f"{b.task}:{b.protection}",
        unit="cycles",
        total_a=a.total,
        total_b=b.total,
        parts=parts,
        concentrations=concentrations,
        scalars=scalars,
        notes=notes,
    ).verify()


def _layer_concentration(
    category: str, layers_a: Sequence[Any], layers_b: Sequence[Any]
) -> Optional[str]:
    """Smallest contiguous layer span carrying more than 3/4 of the
    category's delta — None unless it is a *strict* sub-span (a delta
    spread over every layer is not "concentrated")."""
    if not layers_a or len(layers_a) != len(layers_b):
        return None
    deltas = [
        lb.parts.get(category, _ZERO) - la.parts.get(category, _ZERO)
        for la, lb in zip(layers_a, layers_b)
    ]
    total = sum(deltas, _ZERO)
    if total == 0:
        return None
    count = len(deltas)
    best: Optional[Tuple[int, int]] = None
    for start in range(count):
        acc = _ZERO
        for end in range(start, count):
            acc += deltas[end]
            if acc / total > _CONCENTRATION:
                if best is None or (end - start) < (best[1] - best[0]):
                    best = (start, end)
                break
    if best is None or best == (0, count - 1):
        return None
    start, end = best
    first = layers_b[start].index
    last = layers_b[end].index
    if first == last:
        return f"layer {first}"
    return f"layers {first}–{last}"


# ----------------------------------------------------------------------
# Builders: live serving runs
# ----------------------------------------------------------------------
def diagnose_serve(a: Any, b: Any) -> Diagnosis:
    """Diagnose two :class:`~repro.serving.report.ServeReport` runs.

    The decomposed total is **busy cycles** (service + flush + world
    switch), summed exactly from its components — on the spatial 2-slot
    server busy time can exceed the makespan, so makespan is context
    (a scalar), not the decomposable quantity.
    """
    from repro.serving.report import diff_tenant_reports

    def _parts(report: Any) -> Dict[str, Fraction]:
        out = report.outcome
        return {
            "serve.service": Fraction(out.service_cycles),
            "serve.flush": Fraction(out.flush_cycles),
            "serve.world_switch": Fraction(out.world_cycles),
        }

    parts_a, parts_b = _parts(a), _parts(b)
    parts = [
        DiagnosisPart(name=name, a=parts_a[name], b=parts_b[name])
        for name in ("serve.service", "serve.flush", "serve.world_switch")
    ]
    scalars = []
    for name, va, vb in (
        ("makespan_ms", a.makespan_ms, b.makespan_ms),
        ("completed", len(a.outcome.completed), len(b.outcome.completed)),
        ("flushes", a.outcome.flushes, b.outcome.flushes),
        ("world_switches", a.outcome.world_switches,
         b.outcome.world_switches),
    ):
        if va != vb:
            scalars.append({"name": name, "a": va, "b": vb,
                            "delta": vb - va})
    notes = []
    if a.outcome.scenario != b.outcome.scenario:
        notes.append(
            f"comparing different scenarios: {a.outcome.scenario} vs "
            f"{b.outcome.scenario}"
        )
    return Diagnosis(
        kind="serve",
        label_a=f"{a.outcome.scenario}:{a.outcome.mechanism}",
        label_b=f"{b.outcome.scenario}:{b.outcome.mechanism}",
        unit="cycles",
        total_a=sum((p.a for p in parts), _ZERO),
        total_b=sum((p.b for p in parts), _ZERO),
        parts=[p for p in parts if p.a != 0 or p.b != 0],
        tenant_deltas=diff_tenant_reports(a, b),
        scalars=scalars,
        notes=notes,
    ).verify()


# ----------------------------------------------------------------------
# Builders: archived run pairs
# ----------------------------------------------------------------------
def diagnose_archived(
    store: RunStore, id_a: str, id_b: str
) -> Diagnosis:
    """Diagnose two archived runs by (possibly abbreviated) run_id.

    Prefers the exact profiler category tree when both runs archived
    one; falls back to the serve busy-cycle decomposition, then to a
    single end-to-end part from the first :data:`PRIMARY_METRICS`
    present in both.  Raises :class:`StoreError` (CLI exit 2) for
    unknown ids or incomparable runs.
    """
    run_a = store.resolve_run(id_a)
    run_b = store.resolve_run(id_b)
    label_a = _run_label(run_a)
    label_b = _run_label(run_b)
    if run_a["run_id"] == run_b["run_id"]:
        raise StoreError(
            f"both ids resolve to the same archived run {label_a}"
        )
    notes: List[str] = []
    if (run_a["verb"], run_a["experiment"]) != \
            (run_b["verb"], run_b["experiment"]):
        notes.append(
            f"comparing across experiments: {run_a['verb']}:"
            f"{run_a['experiment']} vs {run_b['verb']}:{run_b['experiment']}"
        )

    cats_a = _archived_categories(store, run_a["run_id"])
    cats_b = _archived_categories(store, run_b["run_id"])
    metrics_a = _archived_metrics(store, run_a["run_id"])
    metrics_b = _archived_metrics(store, run_b["run_id"])
    if cats_a and cats_b:
        names = _category_order(set(cats_a) | set(cats_b))
        parts = [
            DiagnosisPart(
                name=name,
                a=cats_a.get(name, _ZERO),
                b=cats_b.get(name, _ZERO),
            )
            for name in names
        ]
        total_a = sum(cats_a.values(), _ZERO)
        total_b = sum(cats_b.values(), _ZERO)
        unit = "cycles"
    else:
        parts, total_a, total_b, unit = _metric_parts(
            metrics_a, metrics_b, label_a, label_b, notes
        )

    diagnosis = Diagnosis(
        kind="archive",
        label_a=label_a,
        label_b=label_b,
        unit=unit,
        total_a=total_a,
        total_b=total_b,
        parts=[p for p in parts if p.a != 0 or p.b != 0],
        flow_shifts=_flow_shifts(
            store.children("flow_stages", run_a["run_id"]),
            store.children("flow_stages", run_b["run_id"]),
        ),
        tenant_deltas=_tenant_deltas(
            store.children("tenants", run_a["run_id"]),
            store.children("tenants", run_b["run_id"]),
        ),
        audit_deltas=_audit_deltas(
            store.children("audit_summary", run_a["run_id"]),
            store.children("audit_summary", run_b["run_id"]),
        ),
        detections=_detection_deltas(
            store.children("attacks", run_a["run_id"]),
            store.children("attacks", run_b["run_id"]),
        ),
        notes=notes,
    )
    return diagnosis.verify()


#: Exact serve busy-cycle decomposition, archived by record_from_serve.
_SERVE_CYCLE_METRICS = (
    ("serve.service", "serve.service_cycles"),
    ("serve.flush", "serve.flush_cycles"),
    ("serve.world_switch", "serve.world_cycles"),
)


def _metric_parts(
    metrics_a: Dict[str, Fraction],
    metrics_b: Dict[str, Fraction],
    label_a: str,
    label_b: str,
    notes: List[str],
) -> Tuple[List[DiagnosisPart], Fraction, Fraction, str]:
    if all(m in metrics_a and m in metrics_b
           for _, m in _SERVE_CYCLE_METRICS):
        parts = [
            DiagnosisPart(name=name, a=metrics_a[m], b=metrics_b[m])
            for name, m in _SERVE_CYCLE_METRICS
        ]
        return (
            parts,
            sum((p.a for p in parts), _ZERO),
            sum((p.b for p in parts), _ZERO),
            "cycles",
        )
    for name in PRIMARY_METRICS:
        if name in metrics_a and name in metrics_b:
            notes.append(
                f"no exact category tree archived for both runs; "
                f"falling back to end-to-end metric {name!r}"
            )
            part = DiagnosisPart(
                name=name, a=metrics_a[name], b=metrics_b[name]
            )
            unit = "ms" if name.endswith("_ms") else "cycles" \
                if "cycles" in name else "count"
            return [part], part.a, part.b, unit
    raise StoreError(
        f"runs {label_a} and {label_b} share no comparable end-to-end "
        f"metric (tried profile categories, serve cycles, "
        f"{', '.join(PRIMARY_METRICS)})"
    )


def _run_label(run: Dict[str, Any]) -> str:
    protection = run["protection"] or "-"
    return (
        f"{run['verb']}:{run['experiment']}:{protection}"
        f"@{run['run_id'][:8]}"
    )


def _archived_categories(
    store: RunStore, run_id: str
) -> Dict[str, Fraction]:
    return {
        row["category"]: parse_fraction(row["cycles"])
        for row in store.children("profile_categories", run_id)
    }


def _archived_metrics(store: RunStore, run_id: str) -> Dict[str, Fraction]:
    out: Dict[str, Fraction] = {}
    for row in store.children("metrics", run_id):
        value = numeric(row["value"])
        if value is None:
            continue
        text = row["value"]
        try:
            out[row["name"]] = (
                parse_fraction(text) if "/" in text else Fraction(text)
            )
        except (ValueError, ZeroDivisionError):  # pragma: no cover
            continue
    return out


# ----------------------------------------------------------------------
# Context sections from archived children
# ----------------------------------------------------------------------
def _flow_shifts(
    rows_a: List[Dict[str, Any]], rows_b: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    by_a = {r["stage"]: r for r in rows_a}
    by_b = {r["stage"]: r for r in rows_b}
    out = []
    for stage in sorted(set(by_a) | set(by_b)):
        ra, rb = by_a.get(stage, {}), by_b.get(stage, {})
        entry: Dict[str, Any] = {
            "stage": stage,
            "flows_a": int(ra.get("flows", 0)),
            "flows_b": int(rb.get("flows", 0)),
        }
        moved = entry["flows_a"] != entry["flows_b"]
        for pct in ("p50", "p95", "p99"):
            va = numeric(ra.get(pct)) if ra else None
            vb = numeric(rb.get(pct)) if rb else None
            entry[f"{pct}_a"] = va
            entry[f"{pct}_b"] = vb
            entry[f"{pct}_delta"] = (
                vb - va if va is not None and vb is not None else None
            )
            if entry[f"{pct}_delta"]:
                moved = True
        if moved:
            out.append(entry)
    return out


def _tenant_deltas(
    rows_a: List[Dict[str, Any]], rows_b: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    by_a = {r["tenant"]: r for r in rows_a}
    by_b = {r["tenant"]: r for r in rows_b}
    out = []
    for tenant in sorted(set(by_a) | set(by_b)):
        ra, rb = by_a.get(tenant, {}), by_b.get(tenant, {})
        p99_a = numeric(ra.get("p99_ms")) if ra else None
        p99_b = numeric(rb.get("p99_ms")) if rb else None
        sla_a = numeric(ra.get("sla_attainment")) if ra else None
        sla_b = numeric(rb.get("sla_attainment")) if rb else None
        entry = {
            "tenant": tenant,
            "n_a": int(ra.get("n", 0)),
            "n_b": int(rb.get("n", 0)),
            "p99_ms_a": p99_a,
            "p99_ms_b": p99_b,
            "p99_ms_delta": (
                p99_b - p99_a
                if p99_a is not None and p99_b is not None else None
            ),
            "sla_a": sla_a,
            "sla_b": sla_b,
            "sla_delta": (
                sla_b - sla_a
                if sla_a is not None and sla_b is not None else None
            ),
        }
        if (entry["p99_ms_delta"] or entry["sla_delta"]
                or entry["n_a"] != entry["n_b"]):
            out.append(entry)
    return out


def _audit_deltas(
    rows_a: List[Dict[str, Any]], rows_b: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    by_a = {r["kind"]: r for r in rows_a}
    by_b = {r["kind"]: r for r in rows_b}
    out = []
    for kind in sorted(set(by_a) | set(by_b)):
        ra, rb = by_a.get(kind, {}), by_b.get(kind, {})
        denies_a = int(ra.get("denies", 0))
        denies_b = int(rb.get("denies", 0))
        records_a = int(ra.get("records", 0))
        records_b = int(rb.get("records", 0))
        if denies_a == denies_b and records_a == records_b:
            continue
        out.append({
            "kind": kind,
            "records_a": records_a,
            "records_b": records_b,
            "denies_a": denies_a,
            "denies_b": denies_b,
            "denies_delta": denies_b - denies_a,
            "new_denies": denies_b > 0 and denies_a == 0,
        })
    return out


def _detection_deltas(
    rows_a: List[Dict[str, Any]], rows_b: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    by_a = {(r["protection"], r["attack"]): r for r in rows_a}
    by_b = {(r["protection"], r["attack"]): r for r in rows_b}
    out = []
    for key in sorted(set(by_a) | set(by_b)):
        ra, rb = by_a.get(key, {}), by_b.get(key, {})
        lat_a = numeric(ra.get("detection_latency")) if ra else None
        lat_b = numeric(rb.get("detection_latency")) if rb else None
        outcome_a = ra.get("outcome")
        outcome_b = rb.get("outcome")
        if outcome_a == outcome_b and lat_a == lat_b:
            continue
        out.append({
            "protection": key[0],
            "attack": key[1],
            "outcome_a": outcome_a,
            "outcome_b": outcome_b,
            "latency_a": lat_a,
            "latency_b": lat_b,
            "latency_delta": (
                lat_b - lat_a
                if lat_a is not None and lat_b is not None else None
            ),
        })
    return out


# ----------------------------------------------------------------------
# Builders: bench file vs archived history
# ----------------------------------------------------------------------
def diagnose_bench(
    histories: List[Dict[str, Dict[str, float]]],
    payload: Dict[str, Any],
    bench_id: str,
    comparison: Optional[Any] = None,
) -> Diagnosis:
    """Diagnose a fresh BENCH payload against its history median.

    Parts are per-metric ``median -> new`` deltas over the metrics
    present on both sides; the totals are the exact sums of those
    per-metric values (mixed units — the ranking, not the total, is the
    interesting output here, and a note says so).  Pass the failed
    :class:`~repro.telemetry.regression.BenchComparison` to carry the
    gate's per-metric verdicts along as notes.
    """
    from repro.telemetry.regression import median_baseline

    # median_baseline returns a full BENCH-shaped payload ({"metrics":
    # {...}}); normalise both sides through the same section parser.
    baseline = _bench_sections(median_baseline(histories))
    fresh = _bench_sections(payload)
    parts: List[DiagnosisPart] = []
    notes = [
        "bench parts mix units (counts + seconds); rank and per-metric "
        "percentages are the signal, the summed total is bookkeeping"
    ]
    if comparison is not None:
        notes.append(f"gate: {comparison.summary()}")
        for delta in comparison.regressions:
            notes.append(f"gate: {delta.describe()}")
        for name in comparison.missing:
            notes.append(f"gate: {name} MISSING from the new run")
    for kind in ("deterministic", "timing"):
        base_metrics = baseline.get(kind, {})
        new_metrics = fresh.get(kind, {})
        for name in sorted(set(base_metrics) | set(new_metrics)):
            if name in base_metrics and name in new_metrics:
                parts.append(DiagnosisPart(
                    name=f"{kind}.{name}",
                    a=Fraction(base_metrics[name]),
                    b=Fraction(new_metrics[name]),
                ))
            else:
                side = "history" if name in base_metrics else "new run"
                notes.append(
                    f"metric {kind}.{name} only present in the {side}; "
                    f"excluded from the decomposition"
                )
    return Diagnosis(
        kind="bench",
        label_a=f"{bench_id}@history-median[{len(histories)}]",
        label_b=f"{bench_id}@new",
        unit="mixed",
        total_a=sum((p.a for p in parts), _ZERO),
        total_b=sum((p.b for p in parts), _ZERO),
        parts=parts,
        notes=notes,
    ).verify()


def _bench_sections(
    payload: Dict[str, Any]
) -> Dict[str, Dict[str, float]]:
    metrics = payload.get("metrics")
    if isinstance(metrics, dict) and (
        "deterministic" in metrics or "timing" in metrics
    ):
        return {
            kind: {
                name: float(value)
                for name, value in (metrics.get(kind) or {}).items()
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
            }
            for kind in ("deterministic", "timing")
        }
    return {
        "deterministic": {},
        "timing": {
            name: float(value)
            for name, value in payload.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        },
    }
