"""Checking-energy model (the §VI-B energy argument behind Fig. 13b).

"Besides the performance overhead, IOMMU also faces additional energy cost
(as high as 10%), especially in low-power scenarios...  In the case of
IOMMU, IOTLB entries are matched for each memory transaction...  In
contrast, our translation and checking registers can accommodate a
continuous block of addresses, requiring only one access request.
Therefore, the power consumption overhead for the NPU Guarder module is
negligible."

The model charges per-event energies (45 nm-class CAM/SRAM/DRAM numbers,
normalized so only ratios matter) to the counters the detailed simulation
already collects, and reports checking energy as a fraction of the DMA
transfer energy — the low-power background-task scenario the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import CheckStats

#: Per-event energies in picojoules (relative magnitudes are what matter).
ENERGY_PJ = {
    # One fully associative IOTLB access per 64 B packet: CAM match across
    # every entry + data-array read + comparators (dTLB-class structures
    # are a double-digit-pJ cost, the basis of the paper's [55]/[114]
    # energy citations).
    "iotlb_lookup": 60.0,
    # One multi-level page walk: serialized DRAM accesses + walker logic.
    "page_walk": 2000.0,
    # One range-register compare in the Guarder (per DMA descriptor):
    # a handful of 40-bit comparators, no storage access.
    "register_check": 1.5,
    # Moving one byte over the DRAM channel (I/O + DRAM core).
    "dram_byte": 20.0,
}


@dataclass
class EnergyReport:
    """Checking energy of one run, next to its DMA transfer energy."""

    mechanism: str
    checking_pj: float
    transfer_pj: float

    @property
    def overhead(self) -> float:
        """Checking energy as a fraction of transfer energy."""
        return self.checking_pj / self.transfer_pj if self.transfer_pj else 0.0


def iommu_energy(stats: CheckStats, dma_bytes: float) -> EnergyReport:
    """Energy of per-packet IOTLB matching plus page walks."""
    checking = (
        stats.translations * ENERGY_PJ["iotlb_lookup"]
        + stats.page_walks * ENERGY_PJ["page_walk"]
    )
    return EnergyReport(
        mechanism="iommu",
        checking_pj=checking,
        transfer_pj=dma_bytes * ENERGY_PJ["dram_byte"],
    )


def guarder_energy(stats: CheckStats, dma_bytes: float) -> EnergyReport:
    """Energy of request-granular register checking."""
    checking = stats.translations * ENERGY_PJ["register_check"]
    return EnergyReport(
        mechanism="guarder",
        checking_pj=checking,
        transfer_pj=dma_bytes * ENERGY_PJ["dram_byte"],
    )
