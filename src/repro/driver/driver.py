"""The untrusted NPU driver.

The driver lives in the normal world (§III-B: "We do not place trust in
hardware and software components in the normal world like the NPU driver,
scheduler and ML framework").  It

* allocates physical chunks for a task's virtual buffers from the
  NPU-reserved heap (the ION/CMA-style allocator),
* programs the translation machinery for **non-secure** tasks: IO page
  tables for the IOMMU baseline, translation registers for the Guarder,
* never touches checking registers, core ID states or secure memory —
  those are the Monitor's job, and the hardware rejects the attempts
  (which the attack tests exercise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.types import AddressRange, Permission, World
from repro.errors import AllocationError, ConfigError
from repro.memory.allocator import Chunk, ChunkAllocator
from repro.memory.pagetable import PageTable
from repro.memory.regions import MemoryMap
from repro.mmu.base import AccessController
from repro.mmu.guarder import NPUGuarder
from repro.mmu.iommu import IOMMU
from repro.npu.isa import NPUProgram

#: Guarder translation registers reserved for the normal world; the upper
#: half belongs to the Monitor's context setter (secure tasks).
NORMAL_XLAT_REGS = range(0, 8)
SECURE_XLAT_REGS = range(8, 16)


@dataclass
class TaskBinding:
    """A program bound to physical chunks (and translation state)."""

    program: NPUProgram
    chunks: Dict[str, Chunk] = field(default_factory=dict)
    xlat_registers: List[int] = field(default_factory=list)

    def phys_of(self, name: str) -> Chunk:
        if name not in self.chunks:
            raise ConfigError(f"no bound chunk named {name!r}")
        return self.chunks[name]


class NPUDriver:
    """Normal-world driver managing non-secure task bindings."""

    def __init__(
        self,
        memmap: MemoryMap,
        heap: ChunkAllocator,
        controller: AccessController,
        page_table: Optional[PageTable] = None,
    ):
        self.memmap = memmap
        self.heap = heap
        self.controller = controller
        self.page_table = page_table
        self._bindings: List[TaskBinding] = []

    # ------------------------------------------------------------------
    def bind(self, program: NPUProgram) -> TaskBinding:
        """Allocate physical chunks and program translations for a task."""
        if program.world is World.SECURE:
            raise ConfigError(
                "secure tasks are bound by the NPU Monitor's trusted "
                "allocator, not the untrusted driver"
            )
        binding = TaskBinding(program=program)
        try:
            for name, vrange in program.chunks.items():
                chunk = self.heap.alloc(vrange.size, tag=f"{program.task_name}:{name}")
                binding.chunks[name] = chunk
            self._program_translations(binding)
        except AllocationError:
            # Roll back: a failed bind must not leak chunks or registers.
            self.release(binding)
            raise
        self._bindings.append(binding)
        return binding

    def release(self, binding: TaskBinding) -> None:
        for chunk in binding.chunks.values():
            self.heap.free(chunk)
        if isinstance(self.controller, NPUGuarder):
            for reg in binding.xlat_registers:
                self.controller.clear_translation_register(reg)
        elif self.page_table is not None:
            for name, chunk in binding.chunks.items():
                vrange = binding.program.chunks[name]
                self.page_table.unmap_range(vrange.base, vrange.size)
        binding.chunks.clear()
        if binding in self._bindings:
            self._bindings.remove(binding)

    # ------------------------------------------------------------------
    def _program_translations(self, binding: TaskBinding) -> None:
        program = binding.program
        if isinstance(self.controller, NPUGuarder):
            regs = [
                r
                for r in NORMAL_XLAT_REGS
                if self.controller.translation[r] is None
            ]
            if len(regs) < len(program.chunks):
                raise AllocationError(
                    f"task {program.task_name!r} needs {len(program.chunks)} "
                    f"translation registers, {len(regs)} free"
                )
            for reg, (name, vrange) in zip(regs, program.chunks.items()):
                chunk = binding.chunks[name]
                self.controller.set_translation_register(
                    reg, vbase=vrange.base, pbase=chunk.base, size=vrange.size
                )
                binding.xlat_registers.append(reg)
        elif self.page_table is not None:
            for name, vrange in program.chunks.items():
                chunk = binding.chunks[name]
                self.page_table.map_range(
                    vrange.base,
                    chunk.base,
                    vrange.size,
                    perm=Permission.RW,
                    world=World.NORMAL,
                )
        # NoProtection needs no translation state: the compiler's virtual
        # addresses are used as-is, so rebase the binding onto identity.

    @property
    def bindings(self) -> List[TaskBinding]:
        return list(self._bindings)
