"""Multi-task scheduling policies over the NPU (Figs. 14 & 15).

Two sharing axes from the paper:

* **temporal sharing** — the flush baseline: the NPU context-switches
  between tasks at a chosen granularity (tile / layer / five layers) and
  must scrub + save/restore scratchpad context at every boundary
  (Fig. 14).
* **spatial sharing** — two tasks run concurrently on their own cores but
  share the scratchpad capacity and the DRAM channel.  The static
  partition baseline fixes the capacity split for the whole run; sNPU's
  ID-based isolation lets the driver pick *any* split (the "total-best"
  strategy) and lets the survivor expand to the full scratchpad once its
  partner finishes (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.errors import ConfigError
from repro.memory.dram import DRAMModel
from repro.mmu.base import NoProtection
from repro.npu.config import NPUConfig
from repro.npu.core import NPUCore, RunResult
from repro.driver.compiler import TilingCompiler
from repro.workloads.model import ModelGraph


@dataclass
class TimelineEvent:
    """One scheduling event in a co-run timeline."""

    time: float
    task: str
    what: str


@dataclass
class PreemptionStats:
    """SLA view of one mechanism: how long a just-arrived high-priority
    task waits before it can start (Table I's SLA column).

    Temporal-sharing mechanisms admit only at scheduling boundaries, so
    the wait is the remaining quantum; spatial mechanisms (partition,
    sNPU's ID-based sharing) admit immediately.
    """

    mechanism: str
    worst_wait_cycles: float
    mean_wait_cycles: float
    n_boundaries: int

    def meets_sla(self, budget_cycles: float) -> bool:
        return self.worst_wait_cycles <= budget_cycles


@dataclass
class TemporalShareResult:
    """Outcome of round-robin time-sharing two tasks (flush baseline)."""

    granularity: str
    task_a: str
    task_b: str
    t_a: float
    t_b: float
    t_a_solo: float
    t_b_solo: float
    switches: int

    @property
    def norm_a(self) -> float:
        return self.t_a / self.t_a_solo

    @property
    def norm_b(self) -> float:
        return self.t_b / self.t_b_solo

    @property
    def makespan(self) -> float:
        return max(self.t_a, self.t_b)


@dataclass
class PreemptiveResult:
    """A high-priority arrival preempting a running low-priority task."""

    granularity: str
    wait_cycles: float
    high_latency: float
    low_completion: float
    low_solo: float

    @property
    def low_slowdown(self) -> float:
        return self.low_completion / self.low_solo


@dataclass
class SpatialShareResult:
    """Outcome of one two-task spatial-sharing run."""

    policy: str
    split: float  # scratchpad fraction given to task A
    task_a: str
    task_b: str
    t_a: float
    t_b: float
    t_a_solo: float
    t_b_solo: float
    events: List[TimelineEvent] = field(default_factory=list)

    @property
    def norm_a(self) -> float:
        """Normalized execution time of A (>= 1.0; 1.0 = as fast as solo)."""
        return self.t_a / self.t_a_solo

    @property
    def norm_b(self) -> float:
        return self.t_b / self.t_b_solo

    @property
    def total_norm(self) -> float:
        return self.norm_a + self.norm_b


class MultiTaskScheduler:
    """Analytic scheduler over one or two NPU tasks."""

    #: Candidate scratchpad splits explored by the dynamic total-best policy.
    DYNAMIC_SPLITS = tuple(i / 16 for i in range(2, 15))

    def __init__(self, config: NPUConfig, dram: Optional[DRAMModel] = None):
        self.config = config
        self.dram = dram or DRAMModel(config.dram_bytes_per_cycle)
        self.compiler = TilingCompiler(config)
        self._core = NPUCore(config, NoProtection(), self.dram)
        self._compile_cache: Dict[Tuple[str, int], object] = {}
        self._time_cache: Dict[Tuple[str, int, float, Optional[str]], RunResult] = {}
        tel = telemetry.metrics.group("driver.scheduler")
        self._m_runs = tel.counter("runs")
        self._m_switches = tel.counter("context_switches")
        self._m_preemptions = tel.counter("preemptions")
        self._m_coruns = tel.counter("coruns")
        self._h_quantum = tel.histogram("quantum_cycles")

    # ------------------------------------------------------------------
    def compile_cached(self, model: ModelGraph, budget: int):
        key = (model.cache_key, budget)
        if key not in self._compile_cache:
            self._compile_cache[key] = self.compiler.compile(
                model, spad_budget_bytes=budget
            )
        return self._compile_cache[key]

    def run(
        self,
        model: ModelGraph,
        budget: Optional[int] = None,
        share: float = 1.0,
        flush: Optional[str] = None,
    ) -> RunResult:
        budget = budget or self.config.spad_bytes
        key = (model.cache_key, budget, share, flush)
        if key not in self._time_cache:
            program = self.compile_cached(model, budget)
            self._time_cache[key] = self._core.run_analytic(
                program, share=share, flush=flush
            )
        self._m_runs.inc()
        return self._time_cache[key]

    # ------------------------------------------------------------------
    # Temporal sharing: the flush baseline (Fig. 14)
    # ------------------------------------------------------------------
    def flush_slowdown(self, model: ModelGraph, granularity: str) -> float:
        """Normalized performance under flushing (1.0 = no overhead)."""
        base = self.run(model)
        flushed = self.run(model, flush=granularity)
        return base.cycles / flushed.cycles

    def preemption_stats(
        self, model: ModelGraph, mechanism: str
    ) -> PreemptionStats:
        """Worst/mean wait of a high-priority arrival under *mechanism*.

        ``mechanism`` ∈ {"tile", "layer", "layer5"} (temporal quanta) or
        {"partition", "snpu"} (spatial: zero wait).  For temporal sharing,
        an arrival lands uniformly inside some quantum; with quantum
        lengths q_i the mean wait is sum(q_i^2) / (2 * sum(q_i)) and the
        worst wait is max(q_i).
        """
        if mechanism in ("partition", "snpu"):
            return PreemptionStats(mechanism, 0.0, 0.0, 0)
        result = self.run(model)
        program = self.compile_cached(model, self.config.spad_bytes)
        if mechanism == "tile":
            quanta = [
                lr.cycles / max(1, ls.n_blocks)
                for lr, ls in zip(result.layers, program.layers)
                for _ in range(max(1, ls.n_blocks))
            ]
        elif mechanism == "layer":
            quanta = [lr.cycles for lr in result.layers]
        elif mechanism == "layer5":
            per_layer = [lr.cycles for lr in result.layers]
            quanta = [
                sum(per_layer[i : i + 5]) for i in range(0, len(per_layer), 5)
            ]
        else:
            raise ConfigError(f"unknown mechanism {mechanism!r}")
        total = sum(quanta)
        mean_wait = sum(q * q for q in quanta) / (2.0 * total) if total else 0.0
        return PreemptionStats(
            mechanism=mechanism,
            worst_wait_cycles=max(quanta),
            mean_wait_cycles=mean_wait,
            n_boundaries=len(quanta),
        )

    # ------------------------------------------------------------------
    # Temporal sharing: two tasks round-robin with flushes at quanta
    # ------------------------------------------------------------------
    def temporal_corun(
        self, model_a: ModelGraph, model_b: ModelGraph, granularity: str
    ) -> "TemporalShareResult":
        """Time-share the NPU between two tasks under the flush baseline.

        The scheduler alternates quanta of the chosen *granularity*; every
        switch scrubs the scratchpad and pays the context-switch cost
        (§IV-B's strawman).  Returns both completion times plus the solo
        baselines, so the result exposes the full fairness/overhead
        picture that motivates spatial sharing.
        """
        quanta_a = self._quanta(model_a, granularity)
        quanta_b = self._quanta(model_b, granularity)
        switch_cost = (
            self.config.scrub_cycles(self.config.spad_lines)
            + self.config.context_switch_cycles
        )
        t = 0.0
        t_a = t_b = 0.0
        ia = ib = 0
        turn = "a"  # whose quantum the round-robin would grant next
        prev: Optional[str] = None  # task that actually ran last
        switches = 0
        self._m_coruns.inc()
        tracer = telemetry.tracer
        while ia < len(quanta_a) or ib < len(quanta_b):
            a_pending = ia < len(quanta_a)
            b_pending = ib < len(quanta_b)
            # Grant the turn-holder its quantum; once one task has drained
            # its quanta the survivor keeps the NPU (no alternation left).
            if turn == "a":
                ran = "a" if a_pending else "b"
            else:
                ran = "b" if b_pending else "a"
            # A scrub + context switch is paid only when the NPU actually
            # changes hands — never for a survivor running back-to-back
            # quanta during the drain phase.
            if prev is not None and ran != prev:
                if tracer.enabled:
                    tracer.span(
                        "flush switch", "flush", ts=t, dur=switch_cost,
                        track="scheduler",
                    )
                t += switch_cost
                switches += 1
                self._m_switches.inc()
                telemetry.profiler.attribute("scheduler.switch", switch_cost)
                telemetry.profiler.count("scheduler.switches")
            q_start = t
            if ran == "a":
                t += quanta_a[ia]
                ia += 1
                t_a = t
                q_task = model_a.name
            else:
                t += quanta_b[ib]
                ib += 1
                t_b = t
                q_task = model_b.name
            self._h_quantum.observe(t - q_start, cycle=q_start)
            telemetry.profiler.attribute("scheduler.quantum", t - q_start)
            telemetry.profiler.count("scheduler.quanta")
            if tracer.enabled:
                tracer.span(
                    f"quantum {q_task}", "scheduler", ts=q_start,
                    dur=t - q_start, track="scheduler",
                    granularity=granularity,
                )
            prev = ran
            turn = "b" if ran == "a" else "a"
        return TemporalShareResult(
            granularity=granularity,
            task_a=model_a.name,
            task_b=model_b.name,
            t_a=t_a,
            t_b=t_b,
            t_a_solo=self.run(model_a).cycles,
            t_b_solo=self.run(model_b).cycles,
            switches=switches,
        )

    def quanta(
        self, model: ModelGraph, granularity: str, flushed: bool = False
    ) -> List[float]:
        """Scheduling quanta (cycles) of *model* at a flush granularity.

        Public accessor used by the serving simulator's N-way round-robin
        (the two-task :meth:`temporal_corun` is the special case N=2).
        With ``flushed=True`` the quanta come from the flush-baseline run
        (``flush=granularity``): a server that may be preempted at any
        boundary cannot keep scratchpad state resident across one, so its
        service time carries the Fig. 14 write-back inflation.
        """
        return list(self._quanta(model, granularity, flushed=flushed))

    def _quanta(
        self, model: ModelGraph, granularity: str, flushed: bool = False
    ) -> List[float]:
        """Scheduling quanta (cycles) of one task at a flush granularity."""
        result = self.run(model, flush=granularity if flushed else None)
        program = self.compile_cached(model, self.config.spad_bytes)
        per_layer = [lr.cycles for lr in result.layers]
        if granularity == "tile":
            out: List[float] = []
            for lr, ls in zip(result.layers, program.layers):
                blocks = max(1, ls.n_blocks)
                out.extend([lr.cycles / blocks] * blocks)
            return out
        if granularity == "layer":
            return per_layer
        if granularity == "layer5":
            return [
                sum(per_layer[i : i + 5]) for i in range(0, len(per_layer), 5)
            ]
        raise ConfigError(f"unknown granularity {granularity!r}")

    def preemptive_corun(
        self,
        high: ModelGraph,
        low: ModelGraph,
        granularity: str,
        arrival_fraction: float = 0.5,
    ) -> "PreemptiveResult":
        """A high-priority task arrives while a low-priority one runs.

        Under temporal sharing the arrival waits for the current quantum
        to finish, pays one flush, runs to completion, and the low task
        resumes (another flush).  The wait-vs-overhead trade-off across
        granularities is the SLA dilemma of §IV-B ("the granularity of
        flushing becomes a trade-off between performance and compliance
        with the SLA").
        """
        if not 0.0 <= arrival_fraction < 1.0:
            raise ConfigError(
                f"arrival_fraction must be in [0, 1), got {arrival_fraction}"
            )
        quanta_low = self._quanta(low, granularity)
        switch_cost = (
            self.config.scrub_cycles(self.config.spad_lines)
            + self.config.context_switch_cycles
        )
        t_arrive = arrival_fraction * sum(quanta_low)
        # Find the quantum in flight at the arrival.
        elapsed = 0.0
        wait = 0.0
        resume_index = len(quanta_low)
        for i, quantum in enumerate(quanta_low):
            if elapsed + quantum > t_arrive:
                wait = elapsed + quantum - t_arrive
                resume_index = i + 1
                break
            elapsed += quantum
        wait += switch_cost
        self._m_preemptions.inc()
        telemetry.profiler.attribute("scheduler.wait", wait)
        telemetry.profiler.count("scheduler.preemptions")
        tracer = telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "preempt.arrival", "scheduler", ts=t_arrive, track="scheduler",
                high=high.name, granularity=granularity,
            )
            tracer.span(
                "preempt.wait", "scheduler", ts=t_arrive, dur=wait,
                track="scheduler", high=high.name,
            )
        t_high_done = t_arrive + wait + self.run(high).cycles
        remaining_low = sum(quanta_low[resume_index:])
        t_low_done = t_high_done + switch_cost + remaining_low
        return PreemptiveResult(
            granularity=granularity,
            wait_cycles=wait,
            high_latency=t_high_done - t_arrive,
            low_completion=t_low_done,
            low_solo=self.run(low).cycles,
        )

    # ------------------------------------------------------------------
    # Spatial sharing: partition vs ID-based dynamic (Fig. 15)
    # ------------------------------------------------------------------
    def _layer_cycles(
        self, model: ModelGraph, budget: int, share: float
    ) -> List[float]:
        result = self.run(model, budget=budget, share=share)
        return [layer.cycles for layer in result.layers]

    @staticmethod
    def _finish_with_switch(
        co: List[float], post: List[float], switch_time: float
    ) -> float:
        """Completion time of a task that runs *co* rates until
        *switch_time*, then continues at *post* rates."""
        elapsed = 0.0
        for i, t_co in enumerate(co):
            if elapsed + t_co <= switch_time:
                elapsed += t_co
                continue
            # Partially through layer i at the switch.
            frac_done = (switch_time - elapsed) / t_co if t_co else 1.0
            remaining = (1.0 - frac_done) * post[i] + sum(post[i + 1 :])
            return switch_time + remaining
        return elapsed  # finished before the switch

    def spatial_pair(
        self,
        model_a: ModelGraph,
        model_b: ModelGraph,
        policy: str,
        split: Optional[float] = None,
    ) -> SpatialShareResult:
        """Co-run A (secure) and B (non-secure) on separate cores sharing
        the scratchpad capacity and the DRAM channel.

        ``policy`` is ``"partition"`` (requires *split*: A's fraction) or
        ``"dynamic"`` (total-best search + survivor expansion).
        """
        if policy == "partition":
            if split is None:
                raise ConfigError("partition policy requires an explicit split")
            return self._corun(model_a, model_b, split, expand_survivor=False,
                                policy=f"partition-{split:g}")
        if policy == "dynamic":
            best: Optional[SpatialShareResult] = None
            for cand in self.DYNAMIC_SPLITS:
                try:
                    result = self._corun(
                        model_a, model_b, cand, expand_survivor=True,
                        policy="dynamic",
                    )
                except ConfigError:
                    continue
                if best is None or result.total_norm < best.total_norm:
                    best = result
            if best is None:
                raise ConfigError("no feasible split for the dynamic policy")
            return best
        raise ConfigError(f"unknown spatial policy {policy!r}")

    def _corun(
        self,
        model_a: ModelGraph,
        model_b: ModelGraph,
        split: float,
        expand_survivor: bool,
        policy: str,
    ) -> SpatialShareResult:
        if not 0.0 < split < 1.0:
            raise ConfigError(f"split must be in (0, 1), got {split}")
        spad = self.config.spad_bytes
        budget_a = int(spad * split)
        budget_b = spad - budget_a

        solo_a = self.run(model_a).cycles
        solo_b = self.run(model_b).cycles
        co_a = self._layer_cycles(model_a, budget_a, share=0.5)
        co_b = self._layer_cycles(model_b, budget_b, share=0.5)
        # After the partner finishes: full bandwidth; under the dynamic
        # (ID-based) policy the survivor may also expand to the full
        # scratchpad — and keeps whichever schedule is better, since the
        # ID bits place no constraint on the allocation.
        post_a = self._layer_cycles(model_a, budget_a, share=1.0)
        post_b = self._layer_cycles(model_b, budget_b, share=1.0)
        if expand_survivor:
            full_a = self._layer_cycles(model_a, spad, share=1.0)
            full_b = self._layer_cycles(model_b, spad, share=1.0)
            post_a = [min(x, y) for x, y in zip(post_a, full_a)]
            post_b = [min(x, y) for x, y in zip(post_b, full_b)]

        t_a_co, t_b_co = sum(co_a), sum(co_b)
        events = [TimelineEvent(0.0, "both", "co-run starts")]
        if t_a_co <= t_b_co:
            t_a = t_a_co
            t_b = self._finish_with_switch(co_b, post_b, t_a)
            events.append(TimelineEvent(t_a, model_a.name, "finishes; B expands"))
        else:
            t_b = t_b_co
            t_a = self._finish_with_switch(co_a, post_a, t_b)
            events.append(TimelineEvent(t_b, model_b.name, "finishes; A expands"))
        events.append(TimelineEvent(max(t_a, t_b), "both", "done"))
        self._m_coruns.inc()
        tracer = telemetry.tracer
        if tracer.enabled:
            for ev in events:
                tracer.instant(
                    ev.what, "scheduler", ts=ev.time, track="scheduler",
                    task=ev.task, policy=policy,
                )
        return SpatialShareResult(
            policy=policy,
            split=split,
            task_a=model_a.name,
            task_b=model_b.name,
            t_a=t_a,
            t_b=t_b,
            t_a_solo=solo_a,
            t_b_solo=solo_b,
            events=events,
        )
