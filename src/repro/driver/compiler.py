"""Tiling compiler: lowers DNN kernels onto blocked NPU op schedules.

For every GEMM kernel the compiler picks a blocking ``(Mb, Kb, Nb)`` under
the scratchpad/accumulator budget (double-buffered), using the classic
loop order ``for n / for m / for k`` with accumulation innermost:

* input block ``(Mb x Kb)`` is re-streamed once per N-block pass,
* weight block ``(Kb x Nb)`` is streamed once per (n, m, k) step,
* the output block ``(Mb x Nb)`` leaves the accumulator after the k-loop.

DRAM traffic therefore scales as
``input_pass * ceil(N/Nb) + weights * ceil(M/Mb) + output`` — shrinking
the scratchpad budget shrinks ``Nb``/``Mb`` and multiplies traffic, which
is exactly the partition sensitivity Fig. 15 measures.

The compiler emits both the analytic layer summary and a detailed
iteration factory producing real :class:`~repro.common.types.DmaRequest`
descriptors whose page-touch patterns drive the IOTLB simulation
(Fig. 13).  DMA descriptors are architecturally issued per ``array_dim``
rows (Gemmini's ``mvin``); uniform descriptors of one block are batched
into a single simulated request carrying ``sub_requests`` for correct
Guarder/IOMMU accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.types import AddressRange, DmaRequest, World
from repro.errors import ConfigError
from repro.npu.config import NPUConfig
from repro.npu.isa import LayerSchedule, NPUProgram, SpadTransfer, TileIteration
from repro.npu.systolic import SystolicArray
from repro.sim import fastpath
from repro.workloads.model import GemmSpec, Kernel, ModelGraph, VectorSpec

#: Default virtual base address of a task's address space.
TASK_VA_BASE = 0x1000_0000

#: Fast-path blocking memo: ``_choose_blocking`` is a pure function of
#: ``(spec, budget, acc_budget, config)`` (all frozen dataclasses), and
#: experiments recompile the same kernels dozens of times.  Consulted
#: only when the analytic fast path is enabled — the event leg keeps
#: its unmemoised search so benchmarks compare like for like.
_BLOCKING_MEMO: Dict[tuple, "Blocking"] = {}
_BLOCKING_MEMO_MAX = 4096


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _round_up(a: int, b: int) -> int:
    return _ceil_div(a, b) * b


@dataclass(frozen=True)
class Blocking:
    """Chosen block sizes for one GEMM layer (elements, not bytes)."""

    mb: int
    kb: int
    nb: int
    #: Groups of a repeated GEMM packed into one tile iteration.
    pack: int = 1


@dataclass
class _Layout:
    """Virtual-address layout of one compiled task."""

    weights: AddressRange
    act0: AddressRange
    act1: AddressRange

    def act(self, index: int) -> AddressRange:
        return self.act0 if index % 2 == 0 else self.act1


class TilingCompiler:
    """Compiles :class:`~repro.workloads.model.ModelGraph` to NPU programs."""

    #: Candidate M/N block sizes (multiples of the array dimension).
    _CANDIDATES = (16, 32, 64, 128, 256, 512)
    #: Target bytes of packed-group input per iteration for repeated GEMMs.
    _PACK_TARGET_BYTES = 16 * 1024

    def __init__(self, config: NPUConfig):
        self.config = config
        self._systolic = SystolicArray(config)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compile(
        self,
        model: ModelGraph,
        spad_budget_bytes: Optional[int] = None,
        acc_budget_bytes: Optional[int] = None,
        world: World = World.NORMAL,
        va_base: int = TASK_VA_BASE,
    ) -> NPUProgram:
        """Compile *model* under the given scratchpad budget.

        ``spad_budget_bytes`` defaults to the full per-tile scratchpad; the
        spatial-sharing experiments pass a fraction of it.
        """
        budget = spad_budget_bytes or self.config.spad_bytes
        if acc_budget_bytes is None:
            # The accumulator is carved out of the same scratchpad banks, so
            # a capacity split shrinks it proportionally - this is what
            # makes output-block sizes (and hence re-fetch traffic) depend
            # on the partition fraction (Fig. 15).
            acc_budget_bytes = max(
                4 * self.config.array_dim * self.config.acc_elem_bytes,
                self.config.acc_bytes_total * budget // self.config.spad_bytes,
            )
        acc_budget = acc_budget_bytes
        if budget < 4 * self.config.array_dim * self.config.array_dim:
            raise ConfigError(
                f"scratchpad budget {budget} too small for one {self.config.array_dim}"
                f"-wide tile"
            )

        kernels = model.lower()
        # Pre-pass: choose blockings so the weight chunk can be laid out in
        # blocked (pre-tiled) form — weights are static, so the toolchain
        # stores each (k, n) block contiguously, as Gemmini's does.
        blockings: Dict[int, Blocking] = {}
        padded_weights: Dict[int, int] = {}
        for idx, kernel in enumerate(kernels):
            if isinstance(kernel, GemmSpec):
                blocking = self._choose_blocking(kernel, budget, acc_budget)
                blockings[idx] = blocking
                padded_weights[idx] = (
                    0
                    if kernel.b_is_activation
                    else self._padded_weight_bytes(kernel, blocking)
                )
        layout = self._build_layout(va_base, kernels, padded_weights)
        layers: List[LayerSchedule] = []
        weight_offset = 0
        for idx, kernel in enumerate(kernels):
            act_in = layout.act(idx)
            act_out = layout.act(idx + 1)
            if isinstance(kernel, GemmSpec):
                layer = self._compile_gemm(
                    kernel, idx, blockings[idx], layout, weight_offset,
                    act_in, act_out, world,
                )
                weight_offset += padded_weights[idx]
            else:
                layer = self._compile_vector(
                    kernel, idx, budget, act_in, act_out, world
                )
            layers.append(layer)

        program = NPUProgram(
            task_name=model.name,
            layers=layers,
            world=world,
            chunks={
                "weights": layout.weights,
                "act0": layout.act0,
                "act1": layout.act1,
            },
            meta={
                "model": model.name,
                "spad_budget_bytes": budget,
                "acc_budget_bytes": acc_budget,
            },
        )
        return program

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _padded_weight_bytes(self, spec: GemmSpec, b: Blocking) -> int:
        """Blocked-layout weight footprint: full-size slot per (k, n) block."""
        slots = _ceil_div(spec.k, b.kb) * _ceil_div(spec.n, b.nb)
        return slots * b.kb * b.nb * self.config.input_bytes * spec.repeat

    def _build_layout(
        self,
        va_base: int,
        kernels: List[Kernel],
        padded_weights: Dict[int, int],
    ) -> _Layout:
        total_weights = sum(padded_weights.values())
        ib, ob = self.config.input_bytes, self.config.output_bytes
        max_act = 0
        for k in kernels:
            if isinstance(k, GemmSpec):
                per = max(k.input_bytes_per_pass * ib, k.output_bytes * ob)
                if k.b_is_activation:
                    per += k.weight_bytes * ib
                max_act = max(max_act, per * k.repeat)
            else:
                max_act = max(max_act, k.in_bytes * ib, k.out_bytes * ob)
        align = 1 << 12  # page aligned chunks
        w_size = _round_up(max(total_weights, 1), align)
        a_size = _round_up(max(max_act, 1), align)
        weights = AddressRange(va_base, w_size)
        act0 = AddressRange(weights.end, a_size)
        act1 = AddressRange(act0.end, a_size)
        return _Layout(weights=weights, act0=act0, act1=act1)

    # ------------------------------------------------------------------
    # GEMM blocking
    # ------------------------------------------------------------------
    def _choose_blocking(
        self, spec: GemmSpec, budget: int, acc_budget: int
    ) -> Blocking:
        closed = fastpath.enabled()
        if closed:
            memo_key = (spec, budget, acc_budget, self.config)
            cached = _BLOCKING_MEMO.get(memo_key)
            if cached is not None:
                return cached
        d = self.config.array_dim
        ib = self.config.input_bytes
        acc_eb = self.config.acc_elem_bytes
        m_cap = _round_up(spec.m, d) if spec.m >= d else spec.m
        n_cap = _round_up(spec.n, d) if spec.n >= d else spec.n
        k_cap = _round_up(spec.k, d) if spec.k >= d else spec.k

        best: Optional[Tuple[float, float, Blocking]] = None
        m_candidates = [c for c in self._CANDIDATES if c <= m_cap] or [m_cap]
        n_candidates = [c for c in self._CANDIDATES if c <= n_cap] or [n_cap]
        k_options = sorted({c for c in self._CANDIDATES if c <= k_cap} | {k_cap})
        for mb in m_candidates:
            for nb in n_candidates:
                # Accumulator constraint (double buffered).
                if mb * nb * acc_eb * 2 > acc_budget:
                    continue
                # Scratchpad constraint: double-buffered input + weight blocks.
                kb_max = budget // (2 * ib * (mb + nb))
                k_candidates = [c for c in k_options if c <= kb_max]
                if not k_candidates and k_cap < d and kb_max >= k_cap:
                    k_candidates = [k_cap]
                for kb in k_candidates:
                    blocking = Blocking(
                        mb=mb, kb=kb, nb=nb,
                        pack=self._choose_pack(spec, Blocking(mb, kb, nb)),
                    )
                    traffic = self._traffic(spec, blocking)
                    # Minimize the modelled pipeline time (the same per-
                    # iteration max(load, compute, store) the core charges),
                    # with raw traffic as tiebreak (energy/contention).
                    est_time = self._estimate_layer_time(
                        spec, blocking, closed=closed
                    )
                    key = (est_time, traffic)
                    if best is None or key < best[:2]:
                        best = (est_time, traffic, blocking)
        if best is None:
            # Fall back to the smallest legal tile.
            fallback = Blocking(
                mb=min(m_cap, d), kb=min(k_cap, d), nb=min(n_cap, d)
            )
            chosen = Blocking(
                mb=fallback.mb,
                kb=fallback.kb,
                nb=fallback.nb,
                pack=self._choose_pack(spec, fallback),
            )
        else:
            chosen = best[2]
        if closed:
            if len(_BLOCKING_MEMO) >= _BLOCKING_MEMO_MAX:
                _BLOCKING_MEMO.pop(next(iter(_BLOCKING_MEMO)))
            _BLOCKING_MEMO[memo_key] = chosen
        return chosen

    def _choose_pack(self, spec: GemmSpec, blocking: Blocking) -> int:
        if spec.repeat == 1:
            return 1
        per_group_in = blocking.mb * blocking.kb * self.config.input_bytes
        pack = max(1, self._PACK_TARGET_BYTES // max(per_group_in, 1))
        return min(spec.repeat, pack)

    def _traffic(self, spec: GemmSpec, b: Blocking) -> float:
        n_passes = _ceil_div(spec.n, b.nb)
        m_passes = _ceil_div(spec.m, b.mb)
        per_repeat = (
            spec.input_bytes_per_pass * self.config.input_bytes * n_passes
            + spec.weight_bytes * self.config.input_bytes * m_passes
            + spec.output_bytes * self.config.output_bytes
        )
        return float(per_repeat * spec.repeat)

    def _aggregate_gemm(
        self, spec: GemmSpec, b: Blocking, closed: Optional[bool] = None
    ) -> dict:
        """Exact schedule aggregates without a factory fold.

        Two bit-identical implementations: the reference form sums over
        explicit per-dimension block-size lists; the O(1) closed form
        (used on the analytic fast path) replaces each list sum with
        ``count × per-size value`` — every dimension has full blocks
        plus at most one edge block, and every summand is an integer,
        so the product form is the same number.  A unit test asserts
        field-by-field bit equality between the two.
        """
        if closed is None:
            closed = fastpath.enabled()
        if closed and spec.m > 0 and spec.k > 0 and spec.n > 0:
            return self._aggregate_gemm_closed(spec, b)
        return self._aggregate_gemm_lists(spec, b)

    def _aggregate_gemm_lists(self, spec: GemmSpec, b: Blocking) -> dict:
        """Reference aggregate: explicit block-size lists, O(blocks)."""
        cfg = self.config
        d = cfg.array_dim
        ib, ob = cfg.input_bytes, cfg.output_bytes
        # Bytes of raw input fetched per M-row per full-K pass: the spec
        # counts elements, the stride is in bytes.
        row_eff = max(ib, (spec.input_bytes_per_pass // max(spec.m, 1)) * ib)

        def sizes(total: int, block: int) -> List[int]:
            out = [block] * (total // block)
            if total % block:
                out.append(total % block)
            return out or [total]

        m_sizes = sizes(spec.m, b.mb)
        k_sizes = sizes(spec.k, b.kb)
        n_sizes = sizes(spec.n, b.nb)
        halo_cap = (
            _ceil_div(spec.input_halo_bytes * ib, row_eff)
            if spec.input_halo_bytes
            else 0
        )
        # First m block has no halo (nothing precedes it).
        m_eff = [
            bm + (min(bm // 2, halo_cap) if i > 0 else 0)
            for i, bm in enumerate(m_sizes)
        ]

        nM, nK, nN = len(m_sizes), len(k_sizes), len(n_sizes)
        iters_inner = nM * nK * nN
        gs = _ceil_div(spec.repeat, b.pack)

        sum_me = sum(m_eff)
        sum_m = sum(m_sizes)
        sum_n = sum(n_sizes)
        sum_k = sum(k_sizes)
        sum_rowb = sum(max(ib, row_eff * bk // max(spec.k, 1)) for bk in k_sizes)
        sum_wtk = sum(_ceil_div(bk, d) for bk in k_sizes)
        sum_wtn = sum(_ceil_div(bn, d) for bn in n_sizes)
        sum_sub_m = sum(_ceil_div(me, d) for me in m_eff)
        sum_sub_m_plain = sum(_ceil_div(bm, d) for bm in m_sizes)
        sum_sub_k = sum(_ceil_div(bk, d) for bk in k_sizes)

        rep = spec.repeat
        load_bytes = float(nN * sum_me * sum_rowb * rep + nM * sum_k * sum_n * ib * rep)
        store_bytes = float(sum_m * sum_n * ob * rep)
        preload = cfg.weight_preload_cycles
        compute = float(
            rep
            * (
                sum_wtk * sum_wtn * (nM * preload + sum_m)
                + iters_inner * d
            )
        )
        macs = spec.m * spec.k * spec.n * rep
        n_load_req = (nN * sum_sub_m * nK + nM * nN * sum_sub_k) * gs
        n_store_req = nN * sum_sub_m_plain * gs
        return {
            "iters": iters_inner * gs,
            "blocks": nM * nN * gs,
            "load_bytes": load_bytes,
            "store_bytes": store_bytes,
            "compute": compute,
            "macs": macs,
            "n_load_req": n_load_req,
            "n_store_req": n_store_req,
        }

    def _aggregate_gemm_closed(self, spec: GemmSpec, b: Blocking) -> dict:
        """O(1) aggregate: ``count × value`` per distinct block size.

        Mirrors :meth:`_aggregate_gemm_lists` term by term.  Each
        dimension splits into ``q`` full blocks of size ``block`` plus
        at most one edge block of size ``r``; every list sum therefore
        collapses to ``q·f(block) + f(r)``.  All summands are ints, so
        the collapse is exact (callers convert to float identically).
        """
        cfg = self.config
        d = cfg.array_dim
        ib, ob = cfg.input_bytes, cfg.output_bytes
        row_eff = max(ib, (spec.input_bytes_per_pass // max(spec.m, 1)) * ib)

        def split(total: int, block: int) -> Tuple[int, int, int]:
            q, r = divmod(total, block)
            return q, r, q + (1 if r else 0)

        qm, rm, nM = split(spec.m, b.mb)
        qk, rk, nK = split(spec.k, b.kb)
        qn, rn, nN = split(spec.n, b.nb)
        halo_cap = (
            _ceil_div(spec.input_halo_bytes * ib, row_eff)
            if spec.input_halo_bytes
            else 0
        )

        sum_rowb = qk * max(ib, row_eff * b.kb // spec.k) + (
            max(ib, row_eff * rk // spec.k) if rk else 0
        )
        sum_wtk = qk * _ceil_div(b.kb, d) + (_ceil_div(rk, d) if rk else 0)
        sum_wtn = qn * _ceil_div(b.nb, d) + (_ceil_div(rn, d) if rn else 0)
        sum_sub_m_plain = qm * _ceil_div(b.mb, d) + (
            _ceil_div(rm, d) if rm else 0
        )
        # m blocks gain a halo overlap except the very first block.
        if halo_cap and nM > 1:
            hf = min(b.mb // 2, halo_cap)
            he = min(rm // 2, halo_cap)
            sum_me = spec.m + (qm - 1) * hf + (he if rm else 0)
            sum_sub_m = (
                _ceil_div(b.mb, d)
                + (qm - 1) * _ceil_div(b.mb + hf, d)
                + (_ceil_div(rm + he, d) if rm else 0)
            )
        else:
            sum_me = spec.m
            sum_sub_m = sum_sub_m_plain

        iters_inner = nM * nK * nN
        gs = _ceil_div(spec.repeat, b.pack)
        rep = spec.repeat
        load_bytes = float(
            nN * sum_me * sum_rowb * rep + nM * spec.k * spec.n * ib * rep
        )
        store_bytes = float(spec.m * spec.n * ob * rep)
        preload = cfg.weight_preload_cycles
        compute = float(
            rep
            * (
                sum_wtk * sum_wtn * (nM * preload + spec.m)
                + iters_inner * d
            )
        )
        macs = spec.m * spec.k * spec.n * rep
        # sum_sub_k ≡ sum_wtk: both sum ceil(bk / d) over the k blocks.
        n_load_req = (nN * sum_sub_m * nK + nM * nN * sum_wtk) * gs
        n_store_req = nN * sum_sub_m_plain * gs
        return {
            "iters": iters_inner * gs,
            "blocks": nM * nN * gs,
            "load_bytes": load_bytes,
            "store_bytes": store_bytes,
            "compute": compute,
            "macs": macs,
            "n_load_req": n_load_req,
            "n_store_req": n_store_req,
        }

    def _estimate_layer_time(
        self, spec: GemmSpec, b: Blocking, closed: Optional[bool] = None
    ) -> float:
        """The analytic layer time the core will charge for this blocking."""
        agg = self._aggregate_gemm(spec, b, closed=closed)
        bw = self.config.dram_bytes_per_cycle
        iters = agg["iters"]
        blocks = max(agg["blocks"], 1)
        issue = 4.0
        load = (agg["n_load_req"] / iters) * issue + agg["load_bytes"] / iters / bw
        store_block = (
            (agg["n_store_req"] / blocks) * issue
            + agg["store_bytes"] / blocks / bw
        )
        compute = agg["compute"] / iters
        slot = max(load, compute)
        slot_store = max(load, compute, store_block)
        return (iters - blocks) * slot + blocks * slot_store + load + store_block

    # ------------------------------------------------------------------
    # GEMM layer emission
    # ------------------------------------------------------------------
    def _compile_gemm(
        self,
        spec: GemmSpec,
        index: int,
        blocking: Blocking,
        layout: _Layout,
        weight_offset: int,
        act_in: AddressRange,
        act_out: AddressRange,
        world: World,
    ) -> LayerSchedule:
        cfg = self.config
        mb, kb, nb, pack = blocking.mb, blocking.kb, blocking.nb, blocking.pack

        # Effective row length of the streamed A-operand (im2col-aware).
        row_eff = max(
            cfg.input_bytes,
            (spec.input_bytes_per_pass // max(spec.m, 1)) * cfg.input_bytes,
        )
        w_base = (
            act_in.base + spec.input_bytes_per_pass * cfg.input_bytes * spec.repeat
            if spec.b_is_activation
            else layout.weights.base + weight_offset
        )

        n_steps = _ceil_div(spec.n, nb)
        m_steps = _ceil_div(spec.m, mb)
        k_steps = _ceil_div(spec.k, kb)

        def iterations() -> Iterator[TileIteration]:
            per_group_in = spec.input_bytes_per_pass * cfg.input_bytes
            per_group_w = (
                spec.weight_bytes * cfg.input_bytes
                if spec.b_is_activation
                else k_steps * n_steps * kb * nb * cfg.input_bytes
            )
            per_group_out = spec.output_bytes * cfg.output_bytes
            for g0 in range(0, spec.repeat, pack):
                gp = min(pack, spec.repeat - g0)
                in_base_g = act_in.base + g0 * per_group_in
                w_base_g = w_base + g0 * per_group_w
                out_base_g = act_out.base + g0 * per_group_out
                for ni in range(n_steps):
                    n0 = ni * nb
                    bn = min(nb, spec.n - n0)
                    for mi in range(m_steps):
                        m0 = mi * mb
                        bm = min(mb, spec.m - m0)
                        for ki in range(k_steps):
                            k0 = ki * kb
                            bk = min(kb, spec.k - k0)
                            yield self._gemm_iteration(
                                spec, index, world, blocking,
                                in_base_g, w_base_g, out_base_g,
                                row_eff, gp,
                                ni, n0, bn, m0, bm, ki, k0, bk,
                                n_steps,
                                last_k=(ki == k_steps - 1),
                            )

        # Analytic summary.  On the fast path the closed-form aggregates
        # stand in for the factory fold; both describe the same schedule
        # and agree exactly (every term is an integer-valued float below
        # 2**53, so the product form and the sequential sum are the same
        # float — tests/unit/test_isa_compiler.py asserts `==`).
        if fastpath.enabled():
            agg = self._aggregate_gemm(spec, blocking)
            n_iter = agg["iters"]
            n_blocks = agg["blocks"]
            load_bytes = agg["load_bytes"]
            store_bytes = agg["store_bytes"]
            compute_cycles = agg["compute"]
            macs = agg["macs"]
            n_load_req = agg["n_load_req"]
            n_store_req = agg["n_store_req"]
        else:
            n_iter = 0
            n_blocks = 0
            load_bytes = 0.0
            store_bytes = 0.0
            compute_cycles = 0.0
            macs = 0
            n_load_req = 0
            n_store_req = 0
            for it in iterations():
                n_iter += 1
                n_blocks += 1 if it.end_of_block else 0
                load_bytes += it.load_bytes
                store_bytes += it.store_bytes
                compute_cycles += it.compute_cycles
                macs += it.macs
                n_load_req += sum(t.request.sub_requests for t in it.loads)
                n_store_req += sum(t.request.sub_requests for t in it.stores)

        spad_lines_used = min(
            cfg.spad_lines,
            2 * (mb * kb + kb * nb) * cfg.input_bytes // cfg.spad_line_bytes,
        )
        return LayerSchedule(
            name=spec.name,
            index=index,
            kind="gemm",
            n_iterations=max(n_iter, 1),
            n_blocks=max(n_blocks, 1),
            load_bytes=load_bytes,
            store_bytes=store_bytes,
            compute_cycles=compute_cycles,
            macs=macs,
            spad_lines_used=max(spad_lines_used, 1),
            n_load_requests=n_load_req,
            n_store_requests=n_store_req,
            iteration_factory=iterations,
            gemm_meta={
                "m": spec.m,
                "k": spec.k,
                "n": spec.n,
                "repeat": spec.repeat,
                "mb": mb,
                "kb": kb,
                "nb": nb,
                "pack": pack,
                "w_base": w_base,
                "in_base": act_in.base,
                "out_base": act_out.base,
                "row_eff": row_eff,
            },
        )

    def _gemm_iteration(
        self,
        spec: GemmSpec,
        index: int,
        world: World,
        blocking: Blocking,
        in_base: int,
        w_base: int,
        out_base: int,
        row_eff: int,
        gp: int,
        ni: int,
        n0: int,
        bn: int,
        m0: int,
        bm: int,
        ki: int,
        k0: int,
        bk: int,
        n_steps: int,
        last_k: bool,
    ) -> TileIteration:
        cfg = self.config
        ib, ob = cfg.input_bytes, cfg.output_bytes
        d = cfg.array_dim

        # A-operand block: bm rows of the (im2col-effective) input matrix.
        # Convolutions re-touch a receptive-field halo of the previous
        # M-block (kernel > stride): extend the block backwards by the halo
        # rows, which is real refetch traffic and the short-distance page
        # reuse the IOTLB sees.
        in_row_bytes = max(ib, row_eff * bk // max(spec.k, 1)) * gp
        halo_rows = 0
        if spec.input_halo_bytes and m0 > 0:
            halo_rows = min(
                bm // 2, _ceil_div(spec.input_halo_bytes * ib, row_eff)
            )
        in_req = DmaRequest(
            vaddr=in_base + (m0 - halo_rows) * row_eff
            + (k0 * row_eff // max(spec.k, 1)),
            size=(bm + halo_rows) * in_row_bytes,
            is_write=False,
            world=world,
            stream="input",
            rows=bm + halo_rows,
            row_bytes=in_row_bytes,
            row_stride=row_eff * gp if gp > 1 else row_eff,
            sub_requests=_ceil_div(bm + halo_rows, d),
        )

        # B operand.  Static weights are stored pre-tiled: each (k, n)
        # block occupies one contiguous slot.  An activation B operand
        # (attention) is produced at run time and stays row-major/strided.
        if spec.b_is_activation:
            w_req = DmaRequest(
                vaddr=w_base + (k0 * spec.n + n0) * ib,
                size=bk * bn * ib * gp,
                is_write=False,
                world=world,
                stream="weight",
                rows=bk,
                row_bytes=bn * ib * gp,
                row_stride=spec.n * ib,
                sub_requests=_ceil_div(bk, d),
            )
        else:
            slot = blocking.kb * blocking.nb * ib
            w_req = DmaRequest(
                vaddr=w_base + (ki * n_steps + ni) * slot,
                size=bk * bn * ib * gp,
                is_write=False,
                world=world,
                stream="weight",
                sub_requests=_ceil_div(bk, d),
            )

        loads = [
            SpadTransfer(request=in_req, lines=_ceil_div(in_req.size, cfg.spad_line_bytes)),
            SpadTransfer(request=w_req, lines=_ceil_div(w_req.size, cfg.spad_line_bytes)),
        ]
        stores: List[SpadTransfer] = []
        if last_k:
            out_req = DmaRequest(
                vaddr=out_base + (m0 * spec.n + n0) * ob,
                size=bm * bn * ob * gp,
                is_write=True,
                world=world,
                stream="output",
                rows=bm,
                row_bytes=bn * ob * gp,
                row_stride=spec.n * ob,
                sub_requests=_ceil_div(bm, d),
            )
            stores.append(
                SpadTransfer(
                    request=out_req,
                    lines=_ceil_div(out_req.size, cfg.acc_line_bytes),
                    to_accumulator=True,
                )
            )

        compute = self._systolic.gemm_block_cycles(bm, bk, bn) * gp
        macs = self._systolic.gemm_block_macs(bm, bk, bn) * gp
        return TileIteration(
            loads=loads,
            stores=stores,
            compute_cycles=compute,
            macs=macs,
            end_of_block=last_k,
            layer_index=index,
            gemm_coords=(0, gp, m0, bm, k0, bk, n0, bn),
        )

    # ------------------------------------------------------------------
    # Vector layer emission
    # ------------------------------------------------------------------
    def _compile_vector(
        self,
        spec: VectorSpec,
        index: int,
        budget: int,
        act_in: AddressRange,
        act_out: AddressRange,
        world: World,
    ) -> LayerSchedule:
        cfg = self.config
        in_total = spec.in_bytes * cfg.input_bytes
        out_total = spec.out_bytes * cfg.output_bytes
        chunk = max(cfg.spad_line_bytes, min(budget // 4, 64 * 1024))
        n_iter = _ceil_div(in_total, chunk)
        out_chunk = _ceil_div(out_total, n_iter)
        elems_chunk = _ceil_div(spec.elements, n_iter)
        d = cfg.array_dim

        def iterations() -> Iterator[TileIteration]:
            for i in range(n_iter):
                in_off = i * chunk
                in_sz = min(chunk, in_total - in_off)
                out_off = i * out_chunk
                out_sz = max(1, min(out_chunk, out_total - out_off))
                in_req = DmaRequest(
                    vaddr=act_in.base + in_off,
                    size=max(in_sz, 1),
                    is_write=False,
                    world=world,
                    stream="input",
                    sub_requests=_ceil_div(max(in_sz, 1), d * cfg.spad_line_bytes),
                )
                out_req = DmaRequest(
                    vaddr=act_out.base + out_off,
                    size=out_sz,
                    is_write=True,
                    world=world,
                    stream="output",
                    sub_requests=_ceil_div(out_sz, d * cfg.spad_line_bytes),
                )
                yield TileIteration(
                    loads=[
                        SpadTransfer(
                            request=in_req,
                            lines=_ceil_div(in_req.size, cfg.spad_line_bytes),
                        )
                    ],
                    stores=[
                        SpadTransfer(
                            request=out_req,
                            lines=_ceil_div(out_req.size, cfg.spad_line_bytes),
                        )
                    ],
                    compute_cycles=self._systolic.vector_cycles(
                        elems_chunk * spec.ops_per_element
                    ),
                    macs=0,
                    end_of_block=True,
                    layer_index=index,
                )

        return LayerSchedule(
            name=spec.name,
            index=index,
            kind="vector",
            n_iterations=n_iter,
            n_blocks=n_iter,
            load_bytes=float(in_total),
            store_bytes=float(out_total),
            compute_cycles=self._systolic.vector_cycles(
                spec.elements * spec.ops_per_element
            ),
            macs=0,
            spad_lines_used=max(1, chunk // cfg.spad_line_bytes),
            n_load_requests=max(1, _ceil_div(in_total, d * cfg.spad_line_bytes)),
            n_store_requests=max(1, _ceil_div(out_total, d * cfg.spad_line_bytes)),
            iteration_factory=iterations,
        )
