"""The (untrusted) NPU software stack: compiler, driver, scheduler."""

from repro.driver.compiler import TilingCompiler, Blocking
from repro.driver.driver import NPUDriver, TaskBinding
from repro.driver.scheduler import (
    MultiTaskScheduler,
    PreemptionStats,
    SpatialShareResult,
    TemporalShareResult,
    TimelineEvent,
)

__all__ = [
    "TilingCompiler",
    "Blocking",
    "NPUDriver",
    "TaskBinding",
    "MultiTaskScheduler",
    "PreemptionStats",
    "SpatialShareResult",
    "TemporalShareResult",
    "TimelineEvent",
]
