"""Analytic resource models used by the NPU pipeline timing model.

The NPU core (``repro.npu.core``) does not simulate cycle-by-cycle; it
computes per-tile-iteration stage times and composes them with a
double-buffered pipeline model, which is how Gemmini actually overlaps its
``mvin``/``compute``/``mvout`` streams.  These helpers keep the arithmetic
in one audited place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigError, SimulationError


class BandwidthResource:
    """A serially shared bandwidth resource (e.g., the DRAM channel).

    Requests are serviced in arrival order.  ``acquire`` returns the finish
    time of a transfer that *arrives* at ``start`` and moves ``nbytes``
    at ``bytes_per_cycle`` (optionally derated by a sharing factor, used to
    model two concurrently active tasks splitting the channel).
    """

    def __init__(self, bytes_per_cycle: float):
        if bytes_per_cycle <= 0:
            raise ConfigError(f"bandwidth must be positive, got {bytes_per_cycle}")
        self.bytes_per_cycle = float(bytes_per_cycle)
        self._free_at = 0.0
        self.busy_cycles = 0.0
        self.bytes_moved = 0.0

    def cycles_for(self, nbytes: float, share: float = 1.0) -> float:
        """Pure transfer time for *nbytes* at a *share* of the bandwidth."""
        if share <= 0 or share > 1:
            raise ConfigError(f"bandwidth share must be in (0, 1], got {share}")
        return nbytes / (self.bytes_per_cycle * share)

    def acquire(self, start: float, nbytes: float, share: float = 1.0) -> float:
        """Serve a transfer arriving at *start*; return its finish time."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        begin = max(start, self._free_at)
        duration = self.cycles_for(nbytes, share)
        self._free_at = begin + duration
        self.busy_cycles += duration
        self.bytes_moved += nbytes
        return self._free_at

    def reset(self) -> None:
        self._free_at = 0.0
        self.busy_cycles = 0.0
        self.bytes_moved = 0.0


@dataclass(frozen=True)
class StageTimes:
    """Per-iteration stage latencies of the NPU execute loop (in cycles)."""

    load: float
    compute: float
    store: float

    def __post_init__(self) -> None:
        if min(self.load, self.compute, self.store) < 0:
            raise ConfigError(f"negative stage time: {self}")


class PipelineModel:
    """Double-buffered three-stage pipeline (load / compute / store).

    With double buffering, steady-state throughput is limited by the slowest
    stage; the pipeline additionally pays a fill cost of the first load and
    a drain cost of the last store.  ``total_cycles`` folds an iterable of
    per-iteration :class:`StageTimes` into an end-to-end latency.

    This matches Gemmini's behaviour: the DMA engine prefetches the next
    tile while the systolic array computes on the current one, and results
    stream out through the store queue.
    """

    @staticmethod
    def total_cycles(iterations: Iterable[StageTimes]) -> float:
        total = 0.0
        serial = 0.0
        first_load: Optional[float] = None
        last_store = 0.0
        for stage in iterations:
            if first_load is None:
                first_load = stage.load
            total += max(stage.load, stage.compute, stage.store)
            serial += stage.load + stage.compute + stage.store
            last_store = stage.store
        if first_load is None:
            return 0.0
        # The first load is exposed (nothing overlaps it) and the last
        # store drains after the final compute.  For very short pipelines
        # the fill/drain terms can overcharge past plain serial execution,
        # which overlap can never do — cap at serial.
        return min(total + first_load + last_store, serial)

    @staticmethod
    def serial_cycles(iterations: Iterable[StageTimes]) -> float:
        """Latency with no overlap at all (used by the flush baseline when a
        context switch forbids prefetching across the boundary)."""
        return sum(s.load + s.compute + s.store for s in iterations)
