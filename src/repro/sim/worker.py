"""Worker-process hygiene for parallel experiment execution.

A forked (or spawned) pool worker inherits the parent's process-global
telemetry singletons and RNG state.  Engines register metric groups at
construction time, so a worker that built simulators against inherited
state would double-count into registries it does not own.
:func:`init_worker` is the :class:`concurrent.futures.ProcessPoolExecutor`
initializer that resets all of it; :func:`stable_seed` derives the
deterministic per-experiment seed (identical regardless of worker count
or dispatch order, which is what makes ``--jobs N`` bit-identical to
``--jobs 1``).
"""

from __future__ import annotations

import hashlib
import random


def stable_seed(*parts: str) -> int:
    """A 64-bit seed derived only from *parts* (not process state)."""
    digest = hashlib.sha256("\0".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def seed_rngs(seed: int) -> None:
    """Seed every RNG a simulation might consult."""
    random.seed(seed)
    try:
        import numpy

        numpy.random.seed(seed % (2 ** 32))
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass


def init_worker(seed: int = 0) -> None:
    """Pool initializer: fresh telemetry globals + deterministic RNGs.

    Safe to call in-process too (the serial path uses it for identical
    start-of-run state): ``telemetry.scoped`` blocks opened afterwards
    behave exactly as in a pristine interpreter.
    """
    from repro import telemetry

    telemetry.disable()
    telemetry.reset()
    seed_rngs(seed)
