"""A monotonic cycle counter shared by cooperating components."""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonic simulation clock measured in SoC cycles.

    Components that model latency analytically (the NPU pipeline model)
    advance the clock directly; the event-driven :class:`~repro.sim.engine.
    SimEngine` owns its own clock and advances it as events fire.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current time in cycles."""
        return self._now

    def advance(self, cycles: float) -> float:
        """Move time forward by *cycles* and return the new time."""
        if cycles < 0:
            raise SimulationError(f"cannot advance clock by {cycles} cycles")
        self._now += cycles
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to absolute time *when* (no-op if in the past)."""
        if when > self._now:
            self._now = when
        return self._now

    def reset(self) -> None:
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now})"
