"""Deterministic simulation kernel: event queue, clock, shared resources."""

from repro.sim import fastpath
from repro.sim.clock import Clock
from repro.sim.engine import SimEngine, Event
from repro.sim.resources import BandwidthResource, PipelineModel, StageTimes
from repro.sim.worker import init_worker, seed_rngs, stable_seed

__all__ = [
    "Clock",
    "SimEngine",
    "Event",
    "BandwidthResource",
    "PipelineModel",
    "StageTimes",
    "fastpath",
    "init_worker",
    "seed_rngs",
    "stable_seed",
]
