"""Closed-form fast path for the detailed timing engine.

The event simulator (:meth:`repro.npu.core.NPUCore.run_detailed`) walks
every tile iteration and pushes every DMA descriptor through the access
controller.  For the vast majority of layers nothing on that walk can
perturb timing: the controller is stall-free (Guarder / NoProtection) or
its page walks are a pure function of the page-touch sequence and the
current IOTLB state, no flush boundary interrupts the pipeline, no world
switch is in flight, and no attacker, tracer or functional data movement
observes individual packets.  This module computes those layers directly
from the tiling compiler's schedule — once — and *replays* every mutated
accumulator in the exact operation order of the event path, so the result
is bit-identical by construction, not merely close.

Design rules that make the equivalence hold exactly:

* **Sequential replay, not closed-form sums.**  Float accumulators
  (``dma.cursor``, ``stats.stream_cycles``, IOTLB walk stalls, systolic
  busy cycles, the per-layer segment pipeline) are replayed as local
  variables updated with the same operand values in the same order as
  the event path, then written back at layer end.  Only integer-valued
  quantities (request/packet/byte counters) are batched, which is exact
  below 2**53.
* **Conservative eligibility.**  A layer runs on the fast path only when
  the predicate below *proves* the event path would take no data-dependent
  branch the replay does not model: every page mapped with sufficient
  permissions (IOMMU/sMMU), every transfer covered by an allowing register
  pair (Guarder), no flush granularity, no world switch in flight, no
  attacker attached, telemetry collectors that observe per-transfer events
  disabled.  Anything unprovable routes to the event simulator and bumps
  the ``sim.fastpath.fallbacks`` counter (plus a per-reason counter).
* **Memoisation.**  Per-(layer, NPUConfig, protection, share) timing
  bundles for stall-free controllers are memoised across runs, keyed by a
  digest that includes the compiler-source digest — so one BERT layer is
  costed once instead of once per experiment, and any change to the
  simulator source, the NPU configuration or the protection mechanism
  invalidates the memo.  Paging controllers are never memoised across
  runs (their cost depends on mutable IOTLB state); their schedule fold
  is still cached on the layer object itself.

Enable with :func:`set_enabled` (the ``repro experiments --fast`` flag)
or the ``REPRO_FASTPATH`` environment variable, which worker processes
inherit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro import telemetry
from repro.common.types import Permission, World
from repro.memory.pagetable import PageTable
from repro.mmu.base import NoProtection
from repro.mmu.guarder import NPUGuarder
from repro.mmu.iommu import IOMMU
from repro.mmu.smmu import TrustZoneSMMU
from repro.telemetry.metrics import NULL_HISTOGRAM

#: Environment flag checked by :func:`enabled`; ``"1"`` turns the fast
#: path on.  Set via :func:`set_enabled` so pool workers inherit it.
ENV_FLAG = "REPRO_FASTPATH"

#: Metric group holding the fast-path counters
#: (``sim.fastpath.fast_layers``, ``sim.fastpath.fallbacks``, ...).
GROUP_PREFIX = "sim.fastpath"

_FORCED: Optional[bool] = None

#: Compiler/simulator source digest baked into every memo key (lazily the
#: same digest the experiment result cache uses).  Tests monkeypatch this
#: to prove the memo invalidates on source changes.
_SOURCE_DIGEST: Optional[str] = None

_FOLD_ATTR = "_fastpath_fold"
_SIG_ATTR = "_fastpath_sig"

_READ = Permission.READ
_WRITE = Permission.WRITE
# Raw int masks for the page-need union: the fold and the paging
# precheck run over hundreds of thousands of pages, where IntFlag
# __or__/__and__ dominate — plain ints carry the same lattice.
_READ_I = int(Permission.READ)
_WRITE_I = int(Permission.WRITE)
#: IntFlag member -> raw mask without the enum ``.value`` descriptor.
_PERM_MASK = {member: int(member) for member in Permission}


# ----------------------------------------------------------------------
# Enable / disable plumbing
# ----------------------------------------------------------------------
def enabled() -> bool:
    """True when the analytic fast path should be attempted."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def set_enabled(on: bool) -> None:
    """Persistently enable/disable the fast path (inherited by workers)."""
    os.environ[ENV_FLAG] = "1" if on else "0"


@contextmanager
def forced(on: bool) -> Iterator[None]:
    """Force the fast path on/off for a ``with`` block (test helper)."""
    global _FORCED
    saved = _FORCED
    _FORCED = bool(on)
    try:
        yield
    finally:
        _FORCED = saved


def source_digest() -> str:
    """Source digest folded into memo keys (see module docstring)."""
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        from repro.experiments.cache import source_digest as _sd

        _SOURCE_DIGEST = _sd()
    return _SOURCE_DIGEST


# ----------------------------------------------------------------------
# Telemetry counters
# ----------------------------------------------------------------------
def _metric_group():
    """The live ``sim.fastpath`` metric set of the current scope.

    ``MetricsRegistry.group`` registers a *fresh* group per call, so the
    already-registered set is reused when the current registry state has
    one; otherwise one is registered into the active scope.  Returns None
    while metrics are disabled (counting would be invisible anyway).
    """
    reg = telemetry.metrics
    if not reg.enabled:
        return None
    current = reg._groups.get(GROUP_PREFIX)
    if current is not None:
        return current
    return reg.group(GROUP_PREFIX)


def _count(name: str, n: int = 1) -> None:
    group = _metric_group()
    if group is not None:
        group.counter(name).inc(n)


def _fallback(reason: str) -> None:
    """Record one routing decision to the event simulator."""
    _count("fallbacks")
    _count(f"fallbacks.{reason}")


# ----------------------------------------------------------------------
# Schedule fold (once per layer object)
# ----------------------------------------------------------------------
class _Fold:
    """Everything the replay needs, extracted from one factory walk."""

    __slots__ = (
        "iters", "subreq", "packets", "bytes_in", "bytes_out", "macs",
        "page_need", "worlds", "hulls", "distinct", "pte_cache",
    )

    def __init__(self) -> None:
        #: Per iteration: (loads, stores, compute_cycles, macs) where each
        #: transfer is (size, sub_requests, num_packets, is_write, world,
        #: pages, vaddr, span).
        self.iters: List[tuple] = []
        self.subreq = 0
        self.packets = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.macs = 0
        #: vpage -> union of required permission masks (IOMMU precheck).
        self.page_need: Dict[int, int] = {}
        self.worlds: set = set()
        #: (is_write, world) -> [min_vaddr, max_end] (Guarder hull check).
        self.hulls: Dict[tuple, list] = {}
        #: Distinct (vaddr, span, is_write, world) keys (Guarder precheck).
        self.distinct: Dict[tuple, None] = {}
        #: (id(table), table.version, enforce, eff_worlds) -> (table,
        #: pte_map): proven-safe PTE bundles, invalidated by the page
        #: table's mutation counter.  The table reference pins its id.
        self.pte_cache: Dict[tuple, tuple] = {}


def _fold_transfer(fold: _Fold, transfer) -> tuple:
    req = transfer.request
    size = req.size
    is_write = req.is_write
    world = req.world
    if req.rows > 1:
        span = (req.rows - 1) * req.row_stride + req.row_bytes
    else:
        span = size
    pages = tuple(IOMMU._page_sequence(req))
    need = _WRITE_I if is_write else _READ_I
    page_need = fold.page_need
    for page in pages:
        prior = page_need.get(page)
        page_need[page] = need if prior is None else (prior | need)
    fold.worlds.add(world)
    fold.subreq += req.sub_requests
    npackets = req.num_packets
    fold.packets += npackets
    if is_write:
        fold.bytes_out += size
    else:
        fold.bytes_in += size
    key = (req.vaddr, span, is_write, world)
    fold.distinct[key] = None
    hull = fold.hulls.get((is_write, world))
    end = req.vaddr + span
    if hull is None:
        fold.hulls[(is_write, world)] = [req.vaddr, end]
    else:
        if req.vaddr < hull[0]:
            hull[0] = req.vaddr
        if end > hull[1]:
            hull[1] = end
    return (size, req.sub_requests, npackets, is_write, world, pages,
            req.vaddr, span)


def _fold_layer(layer) -> _Fold:
    fold = getattr(layer, _FOLD_ATTR, None)
    if fold is not None:
        return fold
    fold = _Fold()
    for it in layer.iterations():
        loads = tuple(_fold_transfer(fold, t) for t in it.loads)
        stores = tuple(_fold_transfer(fold, t) for t in it.stores)
        fold.iters.append((loads, stores, it.compute_cycles, it.macs))
        fold.macs += it.macs
    try:
        setattr(layer, _FOLD_ATTR, fold)
    except (AttributeError, TypeError):  # pragma: no cover - frozen layer
        pass
    return fold


# ----------------------------------------------------------------------
# Cross-run memo (stall-free controllers only)
# ----------------------------------------------------------------------
class _MemoEntry:
    __slots__ = ("per_iter", "agg", "hulls", "distinct")

    def __init__(self, per_iter, agg, hulls, distinct) -> None:
        self.per_iter = per_iter
        self.agg = agg
        self.hulls = hulls
        self.distinct = distinct


_MEMO: "Dict[str, _MemoEntry]" = {}
_MEMO_MAX = 1024


def clear_memo() -> None:
    """Drop every memoised layer timing bundle (test/bench helper)."""
    _MEMO.clear()


def _memo_put(key: str, entry: _MemoEntry) -> None:
    if len(_MEMO) >= _MEMO_MAX:
        _MEMO.pop(next(iter(_MEMO)))
    _MEMO[key] = entry


def _program_sig(program) -> str:
    sig = getattr(program, _SIG_ATTR, None)
    if sig is None:
        chunks = json.dumps(
            {name: (rng.base, rng.size)
             for name, rng in sorted(program.chunks.items())}
        )
        sig = program.measurement().hex() + "|" + chunks
        try:
            setattr(program, _SIG_ATTR, sig)
        except (AttributeError, TypeError):  # pragma: no cover
            pass
    return sig


def memo_key(config, program, layer_index: int, share: float,
             kind: str) -> str:
    """Memo key for one (layer, NPUConfig, protection, share) bundle.

    Covers every NPUConfig field, the protection kind, the program's
    schedule measurement + virtual chunk layout, and the simulator source
    digest — any change to one of them misses the memo.
    """
    cfg = json.dumps(dataclasses.asdict(config), sort_keys=True, default=str)
    digest = hashlib.sha256()
    for part in (cfg, source_digest(), _program_sig(program),
                 str(layer_index), repr(share), kind):
        digest.update(part.encode())
        digest.update(b"\0")
    return digest.hexdigest()


def _per_iter_streams(fold: _Fold, dram, share: float) -> list:
    """Per-iteration (load_streams, store_streams, compute, macs).

    Stream cycles are a pure function of (size, share); sizes repeat
    across tiles, so they are computed once per distinct size.
    """
    cache: Dict[int, float] = {}
    transfer_cycles = dram.transfer_cycles
    out = []
    for loads, stores, compute, macs in fold.iters:
        load_streams = []
        for t in loads:
            size = t[0]
            s = cache.get(size)
            if s is None:
                s = transfer_cycles(size, share)
                cache[size] = s
            load_streams.append(s)
        store_streams = []
        for t in stores:
            size = t[0]
            s = cache.get(size)
            if s is None:
                s = transfer_cycles(size, share)
                cache[size] = s
            store_streams.append(s)
        out.append((tuple(load_streams), tuple(store_streams), compute, macs))
    return out


# ----------------------------------------------------------------------
# Eligibility prechecks
# ----------------------------------------------------------------------
def _guarder_provable(ctrl: NPUGuarder, hulls, distinct) -> bool:
    """True when every transfer provably passes the Guarder's datapath."""
    tregs = [r for r in ctrl.translation if r is not None]
    cregs = [c for c in ctrl.checking if c is not None]
    if not tregs or not cregs:
        return False
    if len(tregs) == 1 and len(cregs) == 1:
        # One register pair: first-covering == only-covering, so the
        # per-group hull decides for every transfer inside it.
        treg, creg = tregs[0], cregs[0]
        for (is_write, world), (lo, hi) in hulls.items():
            span = hi - lo
            if not treg.covers(lo, span):
                return False
            pbase = treg.translate(lo)
            need = _WRITE if is_write else _READ
            if not (creg.covers(pbase, span) and creg.allows(need, world)):
                return False
        return True
    translation = ctrl.translation
    checking = ctrl.checking
    for vaddr, span, is_write, world in distinct:
        reg = None
        for r in translation:
            if r is not None and r.covers(vaddr, span):
                reg = r
                break
        if reg is None:
            return False
        pbase = reg.translate(vaddr)
        need = _WRITE if is_write else _READ
        allowed = False
        for c in checking:
            if c is not None and c.covers(pbase, span):
                allowed = c.allows(need, world)
                break
        if not allowed:
            return False
    return True


def _paging_provable(ctrl: IOMMU, fold: _Fold, eff_worlds) -> Optional[dict]:
    """PTEs for every touched page iff the IOMMU provably never faults."""
    table = ctrl.page_table
    # The flat table's lookup is a dict get; bypass the wrapper for the
    # exact type only (subclasses may override lookup()).
    if type(table) is PageTable:
        lookup = table._entries.get
    else:
        lookup = table.lookup
    enforce = ctrl.enforce_world
    secure = World.SECURE
    perm_mask = _PERM_MASK
    pte_map: Dict[int, object] = {}
    for vpage, need in fold.page_need.items():
        pte = lookup(vpage)
        if pte is None:
            return None
        # need is a raw int mask; IntFlag.allows == (perm & need) == need.
        mask = perm_mask.get(pte.perm)
        if mask is None:
            mask = pte.perm.value
        if mask & need != need:
            return None
        if enforce and pte.world is secure:
            for world in eff_worlds:
                if world is not secure:
                    return None
        pte_map[vpage] = pte
    return pte_map


# ----------------------------------------------------------------------
# Replay kernels
# ----------------------------------------------------------------------
def _replay_stall_free(core, per_iter, agg) -> Tuple[float, float]:
    """Replay one layer under a stall-free controller.

    Mirrors, per transfer: ``cycles = ISSUE + 0.0 + stream`` and the DMA
    engine's accumulator updates; per iteration: the segment pipeline of
    ``run_detailed``.  All float state is carried in locals updated in
    event order and written back once.
    """
    dma = core.dma
    stats = dma.stats
    observe = dma._h_transfer.observe
    issue = dma.ISSUE_CYCLES
    cursor = dma.cursor
    stream_acc = stats.stream_cycles
    issue_acc = stats.issue_cycles
    systolic = core.systolic
    busy = systolic.busy_cycles
    seg_sum = 0.0
    seg_first = None
    seg_last = 0.0
    comp_sum = 0.0
    clock = None  # cursor value stamped on the audit ledger's clock
    extra = 0.0  # stall-free: outcome.extra_cycles is always 0.0
    for load_streams, store_streams, compute, macs in per_iter:
        load = 0
        for stream in load_streams:
            cycles = issue + extra + stream
            issue_acc += issue
            stream_acc += stream
            clock = cursor
            cursor += cycles
            observe(cycles, cycle=cursor)
            load = load + cycles
        store = 0
        for stream in store_streams:
            cycles = issue + extra + stream
            issue_acc += issue
            stream_acc += stream
            clock = cursor
            cursor += cycles
            observe(cycles, cycle=cursor)
            store = store + cycles
        busy += compute
        comp_sum += compute
        if seg_first is None:
            seg_first = load
        seg_sum += max(load, compute, store)
        seg_last = store
    layer_cycles = seg_sum + (seg_first or 0.0) + seg_last
    audit = telemetry.audit
    if audit.enabled and clock is not None:
        audit.clock = clock
    dma.cursor = cursor
    stats.stream_cycles = stream_acc
    stats.issue_cycles = issue_acc
    stats.requests += agg[0]
    stats.packets += agg[1]
    stats.bytes_in += agg[2]
    stats.bytes_out += agg[3]
    systolic.busy_cycles = busy
    systolic.macs_done += agg[4]
    return layer_cycles, comp_sum


def _replay_paging(core, fold: _Fold, pte_map, share: float,
                   ctrl: IOMMU) -> Tuple[float, float]:
    """Replay one layer under a precheck-proven IOMMU/sMMU.

    The IOTLB is replayed on an ``OrderedDict`` copy (``move_to_end`` /
    ``popitem(last=False)`` — the cache's own LRU primitives) swapped
    back in at layer end; walk stalls replay sequentially with the exact
    sequential-overlap rule of :meth:`IOMMU._translate_page`.  The DMA
    transfer histogram's ``observe`` is inlined field for field (same
    accumulator order, same reservoir RNG draws) — this loop runs once
    per page of every transfer and dominates the fast path's cost.
    """
    dma = core.dma
    stats = dma.stats
    hist = dma._h_transfer
    h_count = hist.count
    h_epoch = hist._epoch_count
    h_total = hist.total
    h_min = hist.min
    h_max = hist.max
    samples = hist.samples
    samples_append = samples.append
    max_samples = hist.max_samples
    getrandbits = hist._rng.getrandbits
    issue = dma.ISSUE_CYCLES
    cursor = dma.cursor
    stream_acc = stats.stream_cycles
    issue_acc = stats.issue_cycles
    stall_acc = stats.stall_cycles
    systolic = core.systolic
    busy = systolic.busy_cycles
    cstats = ctrl.stats
    iotlb = ctrl.iotlb
    tlb = OrderedDict(iotlb._cache)
    entries = iotlb.entries
    walk_cost = ctrl.walk_cycles
    walk_seq = walk_cost * ctrl.SEQUENTIAL_OVERLAP
    last_vpage = ctrl._last_vpage
    walk_cycles_acc = cstats.walk_cycles
    walk_cursor = ctrl._walk_cursor
    hits = 0
    walks = 0
    pending = ctrl._pending_walk_cycles
    transfer_cycles = dma.dram.transfer_cycles
    stream_cache: Dict[int, float] = {}
    seg_sum = 0.0
    seg_first = None
    seg_last = 0.0
    comp_sum = 0.0
    clock = None  # cursor value stamped on the audit ledger's clock
    tlb_move_end = tlb.move_to_end
    tlb_pop_first = tlb.popitem
    tlb_len = len(tlb)
    stream_get = stream_cache.get
    for loads, stores, compute, macs in fold.iters:
        load = 0
        for transfer in loads:
            clock = cursor
            pending = 0.0
            for vpage in transfer[5]:
                if vpage in tlb:
                    tlb_move_end(vpage)
                    hits += 1
                else:
                    walks += 1
                    stall = walk_seq if vpage == last_vpage + 1 else walk_cost
                    walk_cycles_acc += stall
                    pending += stall
                    walk_cursor += stall
                    if tlb_len >= entries:
                        tlb_pop_first(False)
                    else:
                        tlb_len += 1
                    tlb[vpage] = None
                last_vpage = vpage
            stall_acc += pending
            size = transfer[0]
            stream = stream_get(size)
            if stream is None:
                stream = transfer_cycles(size, share)
                stream_cache[size] = stream
            cycles = issue + pending + stream
            issue_acc += issue
            stream_acc += stream
            cursor += cycles
            # Inlined hist.observe(cycles, cycle=cursor):
            h_count += 1
            h_epoch += 1
            h_total += cycles
            if h_min is None or cycles < h_min:
                h_min = cycles
            if h_max is None or cycles > h_max:
                h_max = cycles
            if len(samples) < max_samples:
                samples_append((cursor, cycles))
            elif max_samples > 0:
                # Inlined Random.randrange -> _randbelow_with_getrandbits:
                # identical getrandbits call sequence, identical draws.
                k = h_epoch.bit_length()
                slot = getrandbits(k)
                while slot >= h_epoch:
                    slot = getrandbits(k)
                if slot < max_samples:
                    samples[slot] = (cursor, cycles)
            load = load + cycles
        store = 0
        for transfer in stores:
            clock = cursor
            pending = 0.0
            for vpage in transfer[5]:
                if vpage in tlb:
                    tlb_move_end(vpage)
                    hits += 1
                else:
                    walks += 1
                    stall = walk_seq if vpage == last_vpage + 1 else walk_cost
                    walk_cycles_acc += stall
                    pending += stall
                    walk_cursor += stall
                    if tlb_len >= entries:
                        tlb_pop_first(False)
                    else:
                        tlb_len += 1
                    tlb[vpage] = None
                last_vpage = vpage
            stall_acc += pending
            size = transfer[0]
            stream = stream_get(size)
            if stream is None:
                stream = transfer_cycles(size, share)
                stream_cache[size] = stream
            cycles = issue + pending + stream
            issue_acc += issue
            stream_acc += stream
            cursor += cycles
            # Inlined hist.observe(cycles, cycle=cursor):
            h_count += 1
            h_epoch += 1
            h_total += cycles
            if h_min is None or cycles < h_min:
                h_min = cycles
            if h_max is None or cycles > h_max:
                h_max = cycles
            if len(samples) < max_samples:
                samples_append((cursor, cycles))
            elif max_samples > 0:
                # Inlined Random.randrange -> _randbelow_with_getrandbits:
                # identical getrandbits call sequence, identical draws.
                k = h_epoch.bit_length()
                slot = getrandbits(k)
                while slot >= h_epoch:
                    slot = getrandbits(k)
                if slot < max_samples:
                    samples[slot] = (cursor, cycles)
            store = store + cycles
        busy += compute
        comp_sum += compute
        if seg_first is None:
            seg_first = load
        seg_sum += max(load, compute, store)
        seg_last = store
    layer_cycles = seg_sum + (seg_first or 0.0) + seg_last
    audit = telemetry.audit
    if audit.enabled and clock is not None:
        audit.clock = clock
    dma.cursor = cursor
    stats.stream_cycles = stream_acc
    stats.issue_cycles = issue_acc
    stats.stall_cycles = stall_acc
    stats.requests += fold.subreq
    stats.packets += fold.packets
    stats.bytes_in += fold.bytes_in
    stats.bytes_out += fold.bytes_out
    systolic.busy_cycles = busy
    systolic.macs_done += fold.macs
    cstats.translations += fold.packets
    cstats.checks += fold.packets
    cstats.misses += walks
    cstats.page_walks += walks
    cstats.walk_cycles = walk_cycles_acc
    iotlb.hits += hits
    iotlb.misses += walks
    # Pages inserted during replay carry a None sentinel (the PTE value is
    # never read while replaying); resolve them from pte_map on swap-in.
    # Carried-over entries keep their original PTE objects.
    iotlb._cache = OrderedDict(
        (p, v if v is not None else pte_map[p]) for p, v in tlb.items()
    )
    if hist is not NULL_HISTOGRAM:
        # The null histogram's observe() is a no-op: leave the shared
        # singleton untouched, exactly like the event path does.
        hist.count = h_count
        hist._epoch_count = h_epoch
        hist.total = h_total
        hist.min = h_min
        hist.max = h_max
    ctrl._pending_walk_cycles = pending
    ctrl._last_vpage = last_vpage
    ctrl._walk_cursor = walk_cursor
    if walks:
        telemetry.profiler.count("iotlb.walks", walks)
    return layer_cycles, comp_sum


# ----------------------------------------------------------------------
# Run-level dispatch
# ----------------------------------------------------------------------
_KINDS = {NoProtection: "none", NPUGuarder: "guarder",
          IOMMU: "iommu", TrustZoneSMMU: "smmu"}


class FastRun:
    """Per-``run_detailed``-call fast-path context (one per eligible run)."""

    __slots__ = ("core", "program", "share", "ctrl", "kind", "switches0")

    def __init__(self, core, program, share, ctrl, kind) -> None:
        self.core = core
        self.program = program
        self.share = share
        self.ctrl = ctrl
        self.kind = kind
        self.switches0 = getattr(ctrl, "world_switches", 0)

    def layer(self, layer) -> Optional[Tuple[float, float]]:
        """(layer_cycles, comp_sum) on the fast path, else None."""
        if layer.iteration_factory is None:
            _fallback("no_iterations")
            return None
        kind = self.kind
        ctrl = self.ctrl
        core = self.core
        if kind in ("none", "guarder"):
            key = memo_key(core.config, self.program, layer.index,
                           self.share, kind)
            entry = _MEMO.get(key)
            if entry is None:
                _count("memo_misses")
                try:
                    fold = _fold_layer(layer)
                except Exception:
                    _fallback("fold_error")
                    return None
                agg = (fold.subreq, fold.packets, fold.bytes_in,
                       fold.bytes_out, fold.macs)
                entry = _MemoEntry(
                    _per_iter_streams(fold, core.dma.dram, self.share),
                    agg, dict(fold.hulls), tuple(fold.distinct),
                )
                _memo_put(key, entry)
            else:
                _count("memo_hits")
            if kind == "guarder":
                if not _guarder_provable(ctrl, entry.hulls, entry.distinct):
                    _fallback("guarder_unprovable")
                    return None
            result = _replay_stall_free(core, entry.per_iter, entry.agg)
            if kind == "guarder":
                subreq = entry.agg[0]
                ctrl.stats.translations += subreq
                ctrl.stats.checks += subreq
                telemetry.profiler.count("guarder.checks", subreq)
            _count("fast_layers")
            return result

        # Paging controllers (IOMMU / TrustZone sMMU).
        try:
            fold = _fold_layer(layer)
        except Exception:
            _fallback("fold_error")
            return None
        if kind == "smmu":
            if ctrl.world_switches != self.switches0:
                _fallback("world_switch")
                return None
            if fold.worlds != {ctrl.device_world}:
                # A pending device/world transition (including the
                # secure-task-on-normal-device fault) is the event
                # simulator's business.
                _fallback("world_switch")
                return None
            eff_worlds = (ctrl.device_world,)
        else:
            eff_worlds = tuple(fold.worlds)
        # The precheck result is a pure function of (page table state,
        # enforce flag, worlds); the table's mutation counter keys a
        # cache so repeated runs skip the per-page walk.
        table = ctrl.page_table
        version = getattr(table, "version", None)
        pte_map = None
        if version is not None:
            cache_key = (id(table), version, ctrl.enforce_world, eff_worlds)
            hit = fold.pte_cache.get(cache_key)
            if hit is not None:
                pte_map = hit[1]
        if pte_map is None:
            pte_map = _paging_provable(ctrl, fold, eff_worlds)
            if pte_map is not None and version is not None:
                cache = fold.pte_cache
                if len(cache) >= 8:
                    cache.pop(next(iter(cache)))
                cache[cache_key] = (table, pte_map)
        if pte_map is None:
            _fallback("iommu_unprovable")
            return None
        result = _replay_paging(core, fold, pte_map, self.share, ctrl)
        _count("fast_layers")
        return result


def begin_run(core, program, share: float, flush: Optional[str]
              ) -> Optional[FastRun]:
    """Run-level eligibility gate; None (counted) when the whole run
    must take the event path."""
    if flush is not None:
        _fallback("flush")
        return None
    if not share > 0:
        _fallback("share")
        return None
    if telemetry.tracer.enabled or telemetry.flows.enabled:
        # Both observe every individual transfer.  The audit ledger does
        # not: clean requests only stamp its clock (replayed below), and
        # the fast path proves no denial records can occur.
        _fallback("telemetry")
        return None
    dma = core.dma
    if dma.functional:
        _fallback("functional")
        return None
    if dma.encryption is not None:
        _fallback("encryption")
        return None
    if dma.l2 is not None:
        _fallback("l2")
        return None
    if dma.trace is not None:
        _fallback("dma_trace")
        return None
    if getattr(core, "attacker", None) is not None:
        _fallback("attacker")
        return None
    ctrl = core.controller
    kind = _KINDS.get(type(ctrl))
    if kind is None:
        # Unknown controller subclass: its handle() may do anything.
        _fallback("controller")
        return None
    return FastRun(core, program, share, ctrl, kind)
