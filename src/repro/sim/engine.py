"""A minimal deterministic discrete-event simulation engine.

Used by the flit-level NoC model (Fig. 16) where concurrency between
routers matters.  Events scheduled for the same time fire in insertion
order, which keeps runs bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import Clock


@dataclass(frozen=True)
class Event:
    """A callback scheduled to run at an absolute simulation time."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class SimEngine:
    """Deterministic event loop with a monotonic clock.

    >>> engine = SimEngine()
    >>> order = []
    >>> engine.schedule(5, lambda: order.append("b"))
    >>> engine.schedule(1, lambda: order.append("a"))
    >>> engine.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self):
        self.clock = Clock()
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run *delay* cycles from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} cycles in the past")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run at absolute time *when*."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        event = Event(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def step(self) -> bool:
        """Fire the next event; return False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, event = heapq.heappop(self._queue)
        self.clock.advance_to(when)
        event.action()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or *until* is reached); return the time.

        *max_events* guards against a runaway model that reschedules forever.
        """
        fired = 0
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self.clock.advance_to(until)
                return self.now
            self.step()
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events} events) - livelock?"
                )
        return self.now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
