"""A minimal deterministic discrete-event simulation engine.

Used by the flit-level NoC model (Fig. 16) where concurrency between
routers matters.  Events scheduled for the same time fire in insertion
order, which keeps runs bit-for-bit reproducible.  Cancelled events stay
in the heap as tombstones and are skipped (lazy deletion), so models can
retract a scheduled callback in O(1) without disturbing the queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro import telemetry
from repro.errors import SimulationError
from repro.sim.clock import Clock


@dataclass
class Event:
    """A callback scheduled to run at an absolute simulation time."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Retract this event; the engine skips it without firing."""
        self.cancelled = True


class SimEngine:
    """Deterministic event loop with a monotonic clock.

    >>> engine = SimEngine()
    >>> order = []
    >>> engine.schedule(5, lambda: order.append("b"))
    >>> engine.schedule(1, lambda: order.append("a"))
    >>> engine.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self):
        self.clock = Clock()
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        tel = telemetry.metrics.group("sim.engine")
        self._m_fired = tel.counter("events_fired")
        self._m_cancelled = tel.counter("events_cancelled")
        tel.bind("events_pending", self, "pending")

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run *delay* cycles from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} cycles in the past")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run at absolute time *when*."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        event = Event(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def _discard_cancelled(self) -> None:
        """Drop tombstones sitting at the head of the queue."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
            self._m_cancelled.inc()

    def step(self) -> bool:
        """Fire the next live event; return False when none remain.

        Cancelled events are discarded without firing and without
        advancing the clock.
        """
        self._discard_cancelled()
        if not self._queue:
            return False
        when, _seq, event = heapq.heappop(self._queue)
        self.clock.advance_to(when)
        event.action()
        self._m_fired.inc()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or *until* is reached); return the time.

        *max_events* guards against a runaway model that reschedules
        forever: exactly *max_events* events may fire, and needing one
        more raises.  Cancelled events do not count against the budget.
        """
        started = self.now
        fired = 0
        while True:
            self._discard_cancelled()
            if not self._queue:
                break
            when = self._queue[0][0]
            if until is not None and when > until:
                self.clock.advance_to(until)
                break
            if fired >= max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events} events) - livelock?"
                )
            self.step()
            fired += 1
        if fired:
            telemetry.profiler.count("engine.events_fired", fired)
        tracer = telemetry.tracer
        if tracer.enabled and fired:
            tracer.span(
                "engine.run", "engine", ts=started, dur=self.now - started,
                track="engine", events=fired,
            )
        return self.now

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, event in self._queue if not event.cancelled)
