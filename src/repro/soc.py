"""Top-level SoC facade: build a full system and run tasks on it.

This is the package's primary public API::

    from repro import SoC, SoCConfig
    from repro.workloads import zoo

    soc = SoC(SoCConfig(protection="snpu"))
    result = soc.run_model(zoo.alexnet(112))
    print(result.cycles, result.utilization)

``protection`` selects the comparative system of §VI-A:

* ``"none"`` — **Normal NPU**: no access control, no scratchpad
  isolation, unauthorized NoC (the vulnerable baseline),
* ``"trustzone"`` — **TrustZone NPU**: sMMU/IOMMU with an NS bit, whole-
  NPU world switches with full scratchpad scrubbing, driver in the TEE,
* ``"snpu"`` — **sNPU**: NPU Guarder + ID-based scratchpad isolation +
  peephole NoC + NPU Monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro import telemetry
from repro.common.types import World
from repro.errors import ConfigError
from repro.driver.compiler import TilingCompiler
from repro.driver.driver import NPUDriver, TaskBinding
from repro.memory.allocator import ChunkAllocator
from repro.memory.dram import DRAMModel
from repro.memory.pagetable import PageTable
from repro.memory.regions import MemoryMap
from repro.mmu.base import AccessController, NoProtection
from repro.mmu.guarder import NPUGuarder
from repro.mmu.smmu import TrustZoneSMMU
from repro.monitor.monitor import NPUMonitor, ScheduledSecureTask
from repro.monitor.trampoline import TrampolineFunc
from repro.noc.mesh import Mesh
from repro.noc.router import NoCPolicy
from repro.npu.config import NPUConfig
from repro.npu.core import NPUCore, RunResult
from repro.npu.isa import NPUProgram
from repro.npu.multicore import NPUComplex
from repro.npu.scratchpad import SpadIsolationMode
from repro.workloads.model import ModelGraph

PROTECTIONS = ("none", "trustzone", "snpu")


@dataclass
class SoCConfig:
    """Build-time configuration of the simulated SoC."""

    protection: str = "snpu"
    npu: NPUConfig = field(default_factory=NPUConfig.paper_default)
    iotlb_entries: int = 16
    functional: bool = False
    mesh_rows: int = 2
    mesh_cols: int = 5

    def __post_init__(self) -> None:
        if self.protection not in PROTECTIONS:
            raise ConfigError(
                f"unknown protection {self.protection!r}; use one of {PROTECTIONS}"
            )
        if self.mesh_rows * self.mesh_cols < 1:
            raise ConfigError("mesh must contain at least one core")


@dataclass
class TaskHandle:
    """An accepted task, ready to run."""

    program: NPUProgram
    secure: bool
    binding: Optional[TaskBinding] = None  # non-secure path
    task_id: Optional[int] = None  # secure path (queued in the Monitor)
    scheduled: Optional[ScheduledSecureTask] = None


class SoC:
    """A complete simulated SoC: CPU TEE + NPU complex + memory."""

    def __init__(self, config: Optional[SoCConfig] = None):
        self.config = config or SoCConfig()
        npu = self.config.npu
        self.memmap = MemoryMap.default()
        self.dram = DRAMModel(npu.dram_bytes_per_cycle)
        self.heap = ChunkAllocator(self.memmap.region("npu_reserved").range)
        self.secure_heap = ChunkAllocator(self.memmap.region("secure").range)
        self.mesh = Mesh(self.config.mesh_rows, self.config.mesh_cols)
        self.compiler = TilingCompiler(npu)

        self.page_table: Optional[PageTable] = None
        self.controller = self._build_controller()
        spad_mode = self._spad_mode()
        n_cores = min(npu.num_cores, self.mesh.size)
        self.cores = [
            NPUCore(
                npu,
                self.controller,
                self.dram,
                core_id=i,
                spad_mode=spad_mode,
                functional=self.config.functional,
            )
            for i in range(n_cores)
        ]
        self.complex = NPUComplex(npu, self.mesh, self.dram)
        if self.config.protection == "snpu":
            self.complex.fabric.policy = NoCPolicy.PEEPHOLE
            self.monitor: Optional[NPUMonitor] = NPUMonitor(
                self.memmap, self.controller, self.cores, self.mesh
            )
            self.monitor.boot()
        else:
            self.complex.fabric.policy = NoCPolicy.UNAUTHORIZED
            self.monitor = None
        self.driver = NPUDriver(
            self.memmap, self.heap, self.controller, page_table=self.page_table
        )

    # ------------------------------------------------------------------
    def _build_controller(self) -> AccessController:
        if self.config.protection == "none":
            return NoProtection()
        if self.config.protection == "trustzone":
            self.page_table = PageTable()
            return TrustZoneSMMU(
                self.page_table, iotlb_entries=self.config.iotlb_entries
            )
        return NPUGuarder()

    def _spad_mode(self) -> SpadIsolationMode:
        return (
            SpadIsolationMode.ID_BASED
            if self.config.protection == "snpu"
            else SpadIsolationMode.NONE
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compile(
        self,
        model: ModelGraph,
        secure: bool = False,
        spad_budget_bytes: Optional[int] = None,
    ) -> NPUProgram:
        """Compile a model for this SoC."""
        world = World.SECURE if secure else World.NORMAL
        return self.compiler.compile(
            model, spad_budget_bytes=spad_budget_bytes, world=world
        )

    def submit(
        self,
        task: Union[ModelGraph, NPUProgram],
        secure: bool = False,
        expected_measurement: Optional[bytes] = None,
    ) -> TaskHandle:
        """Bind (non-secure) or verify+enqueue (secure) a task."""
        program = (
            task if isinstance(task, NPUProgram) else self.compile(task, secure)
        )
        if program.world is World.SECURE and not secure:
            raise ConfigError("a secure program must be submitted with secure=True")
        if not secure:
            binding = self.driver.bind(program)
            return TaskHandle(program=program, secure=False, binding=binding)

        if self.config.protection == "snpu":
            assert self.monitor is not None
            expected = expected_measurement or program.measurement()
            task_id = self.monitor.trampoline.invoke(
                TrampolineFunc.SUBMIT_SECURE_TASK,
                args={"program": program, "expected_measurement": expected},
                caller_world=World.NORMAL,
            )
            return TaskHandle(program=program, secure=True, task_id=task_id)
        if self.config.protection == "trustzone":
            # The whole driver lives in the TEE: bind from secure memory.
            binding = TaskBinding(program=program)
            for name, vrange in program.chunks.items():
                binding.chunks[name] = self.secure_heap.alloc(
                    vrange.size, tag=f"tz:{program.task_name}:{name}"
                )
                assert self.page_table is not None
                self.page_table.map_range(
                    vrange.base,
                    binding.chunks[name].base,
                    vrange.size,
                    world=World.SECURE,
                )
            return TaskHandle(program=program, secure=True, binding=binding)
        raise ConfigError(
            "the Normal NPU has no secure-task support; submit with secure=False"
        )

    def run(
        self,
        handle: TaskHandle,
        core_id: int = 0,
        detailed: bool = False,
        share: float = 1.0,
        flush: Optional[str] = None,
    ) -> RunResult:
        """Execute a submitted task on one core and tear it down."""
        core = self.cores[core_id]
        extra_cycles = 0.0
        scheduled: Optional[ScheduledSecureTask] = None

        if handle.secure and self.config.protection == "snpu":
            assert self.monitor is not None
            scheduled = self.monitor.schedule_next([core_id])
            handle.scheduled = scheduled
        elif handle.secure and self.config.protection == "trustzone":
            # Whole-NPU world switch: IOTLB shootdown + scrub all NPU state
            # on entry and exit ("clearing all sensitive NPU context during
            # mode switching", §II-D).
            smmu = self.controller
            assert isinstance(smmu, TrustZoneSMMU)
            smmu.switch_world(World.SECURE)
            scrub = self.config.npu.scrub_cycles(
                core.scratchpad.lines + core.accumulator.lines
            )
            extra_cycles += 2 * (scrub + self.config.npu.context_switch_cycles)

        runner = core.run_detailed if detailed else core.run_analytic
        result = runner(handle.program, share=share, flush=flush)
        result.cycles += extra_cycles
        if extra_cycles:
            # Attribute the whole-NPU world-switch windows to the run the
            # core just archived: entry+exit scrub, fixed switch overhead.
            telemetry.profiler.run_extra(
                extra_cycles,
                [("flush.scrub", 2 * scrub)],
                residual="flush.world_switch",
            )

        if scheduled is not None:
            self.monitor.complete(scheduled)
            handle.scheduled = None
        elif handle.secure and self.config.protection == "trustzone":
            smmu = self.controller
            assert isinstance(smmu, TrustZoneSMMU)
            core.scratchpad.flush_all()
            core.accumulator.flush_all()
            smmu.switch_world(World.NORMAL)
        return result

    def release(self, handle: TaskHandle) -> None:
        """Free a non-secure task's binding (secure tasks tear down in run)."""
        if handle.binding is not None and not handle.secure:
            self.driver.release(handle.binding)
            handle.binding = None
        elif handle.binding is not None:
            for chunk in handle.binding.chunks.values():
                self.secure_heap.free(chunk)
            handle.binding.chunks.clear()

    def run_model(
        self,
        model: ModelGraph,
        secure: bool = False,
        core_id: int = 0,
        detailed: bool = False,
    ) -> RunResult:
        """One-shot convenience: compile, submit, run, release."""
        handle = self.submit(model, secure=secure)
        try:
            return self.run(handle, core_id=core_id, detailed=detailed)
        finally:
            self.release(handle)

    # ------------------------------------------------------------------
    # Functional data path (requires SoCConfig(functional=True))
    # ------------------------------------------------------------------
    def _phys_chunk(self, handle: TaskHandle, name: str):
        if handle.binding is not None:
            return handle.binding.phys_of(name)
        if handle.secure and self.config.protection == "snpu":
            assert self.monitor is not None
            task = next(
                (t for t in self.monitor.queue._queue
                 if t.task_id == handle.task_id),
                None,
            )
            if task is None and handle.scheduled is not None:
                task = handle.scheduled.task
            if task is None or name not in task.chunks:
                raise ConfigError(
                    f"no bound chunk {name!r} for task {handle.task_id}"
                )
            return task.chunks[name]
        raise ConfigError("task has no physical binding")

    def write_input(self, handle: TaskHandle, name: str, data: bytes,
                    offset: int = 0) -> None:
        """Place input bytes into a task's bound buffer (host-side copy).

        For secure tasks this stands for the platform's direct
        device-to-secure-memory path ("the modern mobile SoC supports to
        transfer the device's data directly to the secure memory", §VI-A).
        """
        chunk = self._phys_chunk(handle, name)
        if offset + len(data) > chunk.size:
            raise ConfigError(
                f"{len(data)} bytes at offset {offset} overflow chunk "
                f"{name!r} of {chunk.size} bytes"
            )
        self.dram.write(chunk.base + offset, data)

    def read_output(self, handle: TaskHandle, name: str, size: int,
                    offset: int = 0) -> bytes:
        """Read result bytes back from a task's bound buffer."""
        chunk = self._phys_chunk(handle, name)
        if offset + size > chunk.size:
            raise ConfigError(
                f"read of {size} bytes at offset {offset} overflows chunk "
                f"{name!r} of {chunk.size} bytes"
            )
        return self.dram.read(chunk.base + offset, size)
