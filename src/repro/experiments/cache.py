"""Content-addressed on-disk cache for experiment results.

A cache entry's key is a SHA-256 over

* the experiment id and profile,
* the **config digest** — every field of the paper-default
  :class:`~repro.npu.config.NPUConfig` (which also parameterises the NoC
  mesh: tile count, link width, frequency), and
* the **source digest** — path + content of every ``.py`` file under
  ``src/repro``,

so any change to the simulator, an experiment, or the modeled hardware
invalidates exactly the runs it could affect, while re-running an
unchanged tree is served from disk.  Entries are self-describing JSON
(results + telemetry snapshot + timing) written atomically; see
``docs/TESTING.md`` for the full key recipe.

The cache directory defaults to ``~/.cache/repro-experiments`` and can
be overridden with ``REPRO_CACHE_DIR`` or the CLI ``--cache-dir`` flag.
``repro cache ls`` / ``repro cache clear`` inspect and drop it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_SOURCE_DIGEST: Optional[str] = None


def default_cache_dir() -> str:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro-experiments"
    )


def source_digest() -> str:
    """SHA-256 over every ``.py`` file under ``src/repro`` (memoised).

    The digest covers relative path *and* content, so renames invalidate
    too.  Memoised per process: the tree cannot change underneath a
    running experiment batch.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, root).encode())
                digest.update(b"\0")
                with open(path, "rb") as fh:
                    digest.update(fh.read())
                digest.update(b"\0")
        _SOURCE_DIGEST = digest.hexdigest()
    return _SOURCE_DIGEST


def config_digest() -> str:
    """SHA-256 over the paper-default NPU/NoC configuration fields."""
    from repro.npu.config import NPUConfig

    fields = dataclasses.asdict(NPUConfig.paper_default())
    payload = json.dumps(fields, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def cache_key(exp_id: str, profile: str) -> str:
    """Content-addressed key for one (experiment, profile) run."""
    digest = hashlib.sha256()
    for part in (exp_id, profile, config_digest(), source_digest()):
        digest.update(part.encode())
        digest.update(b"\0")
    return digest.hexdigest()[:24]


class ResultCache:
    """Directory of ``<key>.json`` experiment payloads."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for *key*, or None (corrupt entries miss)."""
        path = self._path(key)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: Dict[str, Any]) -> str:
        """Atomically store *payload* under *key*; returns the path.

        The payload must be JSON-native: any value the ``json`` module
        cannot represent exactly (``Fraction`` attribution totals, sets,
        dataclasses, ...) raises :class:`TypeError` instead of being
        silently stringified — a cache *hit* must return the same-typed
        data a fresh run would have produced.  Encode exact types
        explicitly (e.g. ``float(fraction)``) before calling.
        """
        os.makedirs(self.directory, exist_ok=True)
        self.sweep_tmp()  # best-effort: drop orphans of crashed puts
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(
                    payload, fh, indent=2, sort_keys=True,
                    default=_reject_non_json,
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def sweep_tmp(self, max_age_seconds: float = 300.0) -> int:
        """Remove ``.tmp-*.json`` leftovers of crashed :meth:`put` calls.

        Only files older than *max_age_seconds* go (a concurrent writer's
        live temp file must survive); ``max_age_seconds=0`` sweeps
        unconditionally (what :meth:`clear` does).  Returns the number
        removed.
        """
        if not os.path.isdir(self.directory):
            return 0
        cutoff = time.time() - max_age_seconds
        removed = 0
        for name in os.listdir(self.directory):
            if not (name.startswith(".tmp-") and name.endswith(".json")):
                continue
            path = os.path.join(self.directory, name)
            try:
                if max_age_seconds <= 0 or os.path.getmtime(path) <= cutoff:
                    os.unlink(path)
                    removed += 1
            except OSError:
                pass
        return removed

    def entries(self) -> List[Dict[str, Any]]:
        """Metadata for every cache entry (key, exp_id, profile, size)."""
        if not os.path.isdir(self.directory):
            return []
        out: List[Dict[str, Any]] = []
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".json") or name.startswith("."):
                continue
            path = os.path.join(self.directory, name)
            entry: Dict[str, Any] = {
                "key": name[: -len(".json")],
                "bytes": os.path.getsize(path),
            }
            payload = self.get(entry["key"])
            if payload:
                entry["exp_id"] = payload.get("exp_id", "?")
                entry["profile"] = payload.get("profile", "?")
                entry["elapsed"] = payload.get("elapsed", 0.0)
            else:
                entry["exp_id"] = "<corrupt>"
                entry["profile"] = "?"
                entry["elapsed"] = 0.0
            out.append(entry)
        return out

    def clear(self) -> int:
        """Delete every entry and stale temp file; returns the number
        removed.  Temp files are swept unconditionally here — ``clear``
        is an explicit user action, so even a fresh ``.tmp-`` orphan
        (invisible to :meth:`entries`) must not survive it."""
        removed = self.sweep_tmp(max_age_seconds=0.0)
        for entry in self.entries():
            try:
                os.unlink(self._path(entry["key"]))
                removed += 1
            except OSError:
                pass
        return removed


def _reject_non_json(value: Any) -> Any:
    """``json.dump`` default hook: refuse silent stringification."""
    raise TypeError(
        f"cache payload contains a non-JSON value of type "
        f"{type(value).__name__}: {value!r}; encode it explicitly before "
        f"ResultCache.put() (a hit must round-trip the fresh run's types)"
    )
