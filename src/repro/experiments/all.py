"""Run every experiment and print every table/figure.

Usage::

    python -m repro.experiments.all [profile] [outdir]

``profile`` is ``eval`` (default, reduced resolution) or ``paper``
(full input shapes; several times slower).  With ``outdir`` set, each
experiment also writes ``<exp_id>.json`` (figure data) and
``<exp_id>.metrics.json`` (the telemetry snapshot captured while it ran)
into that directory.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.experiments import fig01, fig13, fig14, fig15, fig16, fig17, fig18
from repro.experiments import sensitivity, table1, tcb
from repro.experiments.runner import ExperimentResult


def _fig13_all(profile: str) -> Tuple[ExperimentResult, ...]:
    perf, reqs = fig13.run(profile)
    return perf, reqs


#: Experiment registry: id -> callable(profile) returning one result or a
#: tuple of results.  ``repro experiments`` and :func:`run_all` both
#: dispatch through it, so every experiment gets the same telemetry wrap.
EXPERIMENTS: Dict[str, Callable] = {
    "fig01": fig01.run,
    "fig13": _fig13_all,
    "fig13-energy": fig13.run_energy,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": lambda profile: fig16.run(),
    "fig17": fig17.run,
    "fig18": lambda profile: fig18.run(),
    "table1": table1.run,
    "tcb": lambda profile: tcb.run(),
    "sensitivity": sensitivity.run,
}


def run_one(
    exp_id: str, profile: str = "eval", outdir: Optional[str] = None
) -> List[ExperimentResult]:
    """Run one experiment under a scoped telemetry registry.

    Every simulator object the experiment constructs registers its metrics
    into a fresh registry, so the snapshot attached to the result (and
    written to ``<exp_id>.metrics.json``) covers exactly this experiment.
    """
    if exp_id == "access-paths":
        from repro.experiments import access_paths

        runner: Callable = access_paths.run
    else:
        runner = EXPERIMENTS[exp_id]
    with telemetry.scoped(trace=False) as scope:
        out = runner(profile)
        snapshot = scope.metrics.snapshot()
    results = list(out) if isinstance(out, tuple) else [out]
    for result in results:
        result.metrics = dict(snapshot)
    if outdir:
        from repro.experiments import export

        os.makedirs(outdir, exist_ok=True)
        for result in results:
            export.write(result, os.path.join(outdir, f"{result.exp_id}.json"))
        with open(os.path.join(outdir, f"{exp_id}.metrics.json"), "w") as fh:
            json.dump(snapshot, fh, indent=2, default=str, sort_keys=True)
    return results


def run_all(profile: str = "eval", outdir: Optional[str] = None) -> None:
    started = time.time()
    for exp_id in EXPERIMENTS:
        for result in run_one(exp_id, profile, outdir):
            print(result)
            print()
    print(f"(all experiments in {time.time() - started:.1f}s, profile={profile})")
    if outdir:
        print(f"(figure data + metrics written to {outdir}/)")


if __name__ == "__main__":
    run_all(
        sys.argv[1] if len(sys.argv) > 1 else "eval",
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
