"""Run every experiment and print every table/figure.

Usage::

    python -m repro.experiments.all [profile]

``profile`` is ``eval`` (default, reduced resolution) or ``paper``
(full input shapes; several times slower).
"""

from __future__ import annotations

import sys
import time

from repro.experiments import fig01, fig13, fig14, fig15, fig16, fig17, fig18
from repro.experiments import sensitivity, table1, tcb


def run_all(profile: str = "eval") -> None:
    started = time.time()
    print(fig01.run(profile))
    print()
    perf, reqs = fig13.run(profile)
    print(perf)
    print()
    print(reqs)
    print()
    print(fig13.run_energy(profile))
    print()
    print(fig14.run(profile))
    print()
    print(fig15.run(profile))
    print()
    print(fig16.run())
    print()
    print(fig17.run(profile))
    print()
    print(fig18.run())
    print()
    print(table1.run(profile))
    print()
    print(tcb.run())
    print()
    print(sensitivity.run(profile))
    print(f"\n(all experiments in {time.time() - started:.1f}s, profile={profile})")


if __name__ == "__main__":
    run_all(sys.argv[1] if len(sys.argv) > 1 else "eval")
