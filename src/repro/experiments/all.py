"""Run every experiment and print every table/figure.

Usage::

    python -m repro.experiments.all [profile] [outdir]

``profile`` is ``eval`` (default, reduced resolution) or ``paper``
(full input shapes; several times slower).  With ``outdir`` set, each
experiment also writes ``<exp_id>.json`` (figure data) and
``<exp_id>.metrics.json`` (the telemetry snapshot captured while it ran)
into that directory.

Experiments are declared in :data:`REGISTRY` with relative cost hints
(measured ``eval`` wall-clock) and dependencies; ``repro all --jobs N``
uses those to schedule a process pool (see
:mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.experiments import fig01, fig13, fig14, fig15, fig16, fig17, fig18
from repro.experiments import cluster, sensitivity, serve, table1, tcb, watch
from repro.experiments.registry import ExperimentRegistry
from repro.experiments.runner import ExperimentResult


def _fig13_all(profile: str) -> Tuple[ExperimentResult, ...]:
    perf, reqs = fig13.run(profile)
    return perf, reqs


def _access_paths(profile: str):
    from repro.experiments import access_paths

    return access_paths.run(profile)


#: Experiment registry: the single dispatch point for ``repro
#: experiments``, :func:`run_all` and the parallel executor.  Cost hints
#: are measured ``eval``-profile seconds (relative values are what
#: matters: the scheduler dispatches costliest-first).
REGISTRY = ExperimentRegistry()
REGISTRY.register("fig01", fig01.run, cost=1.2,
                  description="accelerator utilization (Fig. 1)")
REGISTRY.register("fig13", _fig13_all, cost=11.5,
                  description="access control: perf + request counts")
REGISTRY.register("fig13-energy", fig13.run_energy, cost=4.1, deps=("fig13",),
                  description="checking-energy companion to Fig. 13(b)")
REGISTRY.register("fig14", fig14.run, cost=0.5,
                  description="flush granularity")
REGISTRY.register("fig15", fig15.run, cost=9.0,
                  description="partition vs dynamic scratchpad")
REGISTRY.register("fig16", lambda profile: fig16.run(), cost=0.1,
                  description="NoC micro-test")
REGISTRY.register("fig17", fig17.run, cost=0.4,
                  description="NoC application overhead")
REGISTRY.register("fig18", lambda profile: fig18.run(), cost=0.1,
                  description="hardware cost")
REGISTRY.register("table1", table1.run, cost=9.5,
                  description="isolation matrix (Table I)")
REGISTRY.register("tcb", lambda profile: tcb.run(), cost=0.1,
                  description="TCB size")
REGISTRY.register("sensitivity", sensitivity.run, cost=3.4,
                  description="sensitivity sweeps")
REGISTRY.register("serve-sweep", serve.run, cost=6.0,
                  description="multi-tenant serving SLA sweep (§IV-B)")
REGISTRY.register("cluster-sweep", cluster.run, cost=8.0,
                  description="sharded multi-NPU cluster serving sweep")
REGISTRY.register("access-paths", _access_paths, cost=3.0, in_all=False,
                  description="access-path microbenchmarks")
REGISTRY.register("watch", watch.run, cost=1.0,
                  description="live observability window timeline")

#: Backwards-compatible ``id -> callable(profile)`` view of the registry
#: (everything that ``repro all`` runs).
EXPERIMENTS: Dict[str, Callable] = {
    spec.exp_id: spec.runner for spec in REGISTRY if spec.in_all
}


def run_one(
    exp_id: str, profile: str = "eval", outdir: Optional[str] = None
) -> List[ExperimentResult]:
    """Run one experiment under a scoped telemetry registry.

    Every simulator object the experiment constructs registers its metrics
    into a fresh registry, so the snapshot attached to the result (and
    written to ``<exp_id>.metrics.json``) covers exactly this experiment.
    """
    spec = REGISTRY.get(exp_id)
    with telemetry.scoped(trace=False) as scope:
        out = spec.runner(profile)
        snapshot = scope.metrics.snapshot()
    results = list(out) if isinstance(out, tuple) else [out]
    for result in results:
        result.metrics = dict(snapshot)
    if outdir:
        from repro.experiments import export

        os.makedirs(outdir, exist_ok=True)
        for result in results:
            export.write(result, os.path.join(outdir, f"{result.exp_id}.json"))
        with open(os.path.join(outdir, f"{exp_id}.metrics.json"), "w") as fh:
            json.dump(snapshot, fh, indent=2, default=str, sort_keys=True)
    return results


def run_all(
    profile: str = "eval",
    outdir: Optional[str] = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
) -> None:
    """Run every registered experiment and print each table.

    With ``jobs > 1`` the experiments fan out across a process pool;
    with ``use_cache`` unchanged experiments are served from the
    content-addressed result cache.  Either way the printed figure data
    is identical to a serial, uncached run.
    """
    from repro.experiments.parallel import run_parallel

    run = run_parallel(
        None, profile=profile, jobs=jobs, outdir=outdir,
        use_cache=use_cache, cache_dir=cache_dir,
    )
    for outcome in run.outcomes:
        for result in outcome.results:
            print(result)
            print()
    print(run.timing_table())
    print()
    print(
        f"(all experiments in {run.wall_seconds:.1f}s, profile={profile}, "
        f"jobs={run.jobs}, {run.cache_hits} cached)"
    )
    if outdir:
        print(f"(figure data + metrics written to {outdir}/)")


if __name__ == "__main__":
    run_all(
        sys.argv[1] if len(sys.argv) > 1 else "eval",
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
