"""§VI-F — TCB size analysis.

Paper numbers plus the measured size of this reproduction's Monitor
package, making the same argument: the trusted module is orders of
magnitude smaller than the untrusted NPU software stack it replaces in
the TCB.
"""

from __future__ import annotations

from repro.analysis.tcb import tcb_report
from repro.experiments.runner import ExperimentResult


def run() -> ExperimentResult:
    report = tcb_report()
    result = ExperimentResult(
        exp_id="tcb",
        title="Software TCB size (lines of code)",
        columns=["component", "loc", "trusted"],
    )
    for component in report["paper"]:
        result.add_row(
            component=f"paper: {component.name}",
            loc=component.loc,
            trusted="yes" if component.trusted else "no",
        )
    result.add_row(
        component="repro: repro.monitor (measured)",
        loc=report["repro_monitor_total"],
        trusted="yes",
    )
    result.add_row(
        component="repro: driver+compiler+workloads (measured)",
        loc=report["repro_untrusted_total"],
        trusted="no",
    )
    ratio = report["paper_untrusted_total"] / report["paper_trusted_total"]
    result.notes.append(
        f"paper untrusted/trusted ratio ~{ratio:.0f}x; the Monitor stays a "
        f"small fraction of the stack in both the paper and this repo"
    )
    return result


if __name__ == "__main__":
    print(run())
