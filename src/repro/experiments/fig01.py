"""Fig. 1 — overall FLOPS utilization of different inference workloads.

Paper claim: "Most ML workloads utilize less than 50% of the computational
resource available in the TPU core", motivating multitasking.

We report utilization on the Table II Gemmini tile and on a TPU-like
scale-up; the scale-up shows the figure's regime (the larger the NPU, the
lower single-task utilization falls).
"""

from __future__ import annotations

from repro.analysis.utilization import tpu_like_config, utilization_report
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig
from repro.workloads import zoo


def run(profile: str = "eval") -> ExperimentResult:
    models = zoo.paper_models(profile)
    result = ExperimentResult(
        exp_id="fig01",
        title="FLOPS utilization of single inference workloads",
        columns=["workload", "util_gemmini", "util_tpu_like"],
    )
    gemmini = {r.workload: r for r in utilization_report(models)}
    tpu = {
        r.workload: r
        for r in utilization_report(models, config=tpu_like_config())
    }
    for model in models:
        result.add_row(
            workload=model.name,
            util_gemmini=gemmini[model.name].utilization,
            util_tpu_like=tpu[model.name].utilization,
        )
    below_50 = sum(1 for r in result.rows if r["util_tpu_like"] < 0.5)
    result.notes.append(
        f"{below_50}/{len(result.rows)} workloads below 50% utilization on "
        f"the TPU-like configuration (paper: most workloads < 50%)"
    )
    return result


if __name__ == "__main__":
    print(run())
