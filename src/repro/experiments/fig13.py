"""Fig. 13 — protected memory access: IOMMU (IOTLB-N) vs NPU Guarder.

(a) normalized end-to-end performance of the six workloads under each
    access-control mechanism (baseline = Guarder = unprotected speed),
(b) translation/check request counts: the Guarder translates once per DMA
    descriptor, the IOMMU once per 64-byte packet (paper: Guarder needs
    ~5 % of the IOMMU's requests).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro import telemetry
from repro.common.types import AddressRange, Permission, World
from repro.driver.compiler import TilingCompiler
from repro.experiments.runner import ExperimentResult
from repro.memory.dram import DRAMModel
from repro.memory.pagetable import PageTable
from repro.mmu.guarder import NPUGuarder
from repro.mmu.iommu import IOMMU
from repro.npu.config import NPUConfig
from repro.npu.core import NPUCore
from repro.workloads import zoo

DEFAULT_ENTRIES: Tuple[int, ...] = (4, 8, 16, 32)


def _guarder_for_run() -> NPUGuarder:
    """A Guarder with a single permissive platform mapping (performance
    runs exercise timing, not policy)."""
    guarder = NPUGuarder()
    guarder.set_checking_register(
        0, AddressRange(0, 1 << 40), Permission.RW, World.NORMAL,
        issuer=World.SECURE,
    )
    guarder.set_translation_register(0, vbase=0, pbase=0, size=1 << 40)
    return guarder


def _identity_table(program) -> PageTable:
    table = PageTable()
    for vrange in program.chunks.values():
        base = vrange.base & ~4095
        table.map_range(base, base, vrange.size + 8192)
    return table


def run(
    profile: str = "eval",
    entries: Sequence[int] = DEFAULT_ENTRIES,
    config: Optional[NPUConfig] = None,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Return (fig13a, fig13b)."""
    config = config or NPUConfig.paper_default()
    compiler = TilingCompiler(config)
    dram = DRAMModel(config.dram_bytes_per_cycle)

    perf = ExperimentResult(
        exp_id="fig13a",
        title="Normalized performance under different access control",
        columns=["workload", "guarder"] + [f"iotlb-{e}" for e in entries],
    )
    reqs = ExperimentResult(
        exp_id="fig13b",
        title="Translation requests: Guarder vs per-packet IOMMU",
        columns=["workload", "guarder_requests", "iommu_requests", "ratio"],
    )

    for model in zoo.paper_models(profile):
        program = compiler.compile(model)
        core = NPUCore(config, _guarder_for_run(), dram)
        guarder_run = core.run_detailed(program)

        row = {"workload": model.name, "guarder": 1.0}
        iommu_requests = 0
        # One identity table per model: the IOMMU never mutates it, so the
        # per-entries runs can share it instead of rebuilding 4 copies.
        table = _identity_table(program)
        for n in entries:
            iommu = IOMMU(table, iotlb_entries=n)
            iommu_run = NPUCore(config, iommu, dram).run_detailed(program)
            row[f"iotlb-{n}"] = guarder_run.cycles / iommu_run.cycles
            iommu_requests = iommu_run.check_stats.translations
        perf.rows.append(row)
        reqs.add_row(
            workload=model.name,
            guarder_requests=guarder_run.check_stats.translations,
            iommu_requests=iommu_requests,
            ratio=guarder_run.check_stats.translations / iommu_requests,
        )

    means = {
        f"iotlb-{e}": sum(r[f"iotlb-{e}"] for r in perf.rows) / len(perf.rows)
        for e in entries
    }
    perf.notes.append(
        "means: "
        + ", ".join(f"{k}={v:.3f}" for k, v in means.items())
        + " (paper: ~0.80 with 4 entries, ~0.90 with 32; Guarder 1.0)"
    )
    mean_ratio = sum(r["ratio"] for r in reqs.rows) / len(reqs.rows)
    reqs.notes.append(
        f"mean request ratio {mean_ratio:.1%} (paper: ~5% of IOMMU requests)"
    )
    if telemetry.flows.enabled:
        # Per-request view of the same mechanism difference: the run's
        # DMA flows decompose into queueing/service/security exactly, and
        # the security share is where the IOMMU's walks land.
        from repro.analysis.flows import FlowReport

        report = FlowReport(telemetry.flows.records)
        perf.notes.append(
            f"flow tracing: {len(report.records)} DMA flows, security "
            f"share {float(report.security / report.total) if report.total else 0.0:.1%}, "
            f"slowest-decile security share "
            f"{report.decile_security_share():.1%}"
        )
    return perf, reqs


def run_energy(
    profile: str = "eval", config: Optional[NPUConfig] = None
) -> ExperimentResult:
    """Checking-energy companion to Fig. 13(b) (§VI-B's energy argument).

    Reports each mechanism's checking energy as a fraction of the DMA
    transfer energy (the paper: IOMMU "as high as 10%", Guarder
    negligible).
    """
    from repro.analysis.energy import guarder_energy, iommu_energy

    config = config or NPUConfig.paper_default()
    compiler = TilingCompiler(config)
    dram = DRAMModel(config.dram_bytes_per_cycle)
    result = ExperimentResult(
        exp_id="fig13-energy",
        title="Checking energy as a fraction of DMA transfer energy",
        columns=["workload", "iommu_overhead", "guarder_overhead"],
    )
    for model in zoo.paper_models(profile):
        program = compiler.compile(model)
        guarder_run = NPUCore(config, _guarder_for_run(), dram).run_detailed(
            program
        )
        iommu = IOMMU(_identity_table(program), iotlb_entries=32)
        iommu_run = NPUCore(config, iommu, dram).run_detailed(program)
        result.add_row(
            workload=model.name,
            iommu_overhead=iommu_energy(
                iommu_run.check_stats, iommu_run.dma_bytes
            ).overhead,
            guarder_overhead=guarder_energy(
                guarder_run.check_stats, guarder_run.dma_bytes
            ).overhead,
        )
    mean_iommu = sum(r["iommu_overhead"] for r in result.rows) / len(result.rows)
    result.notes.append(
        f"mean IOMMU checking-energy overhead {mean_iommu:.1%} (paper: 'as "
        f"high as 10%'); Guarder is orders of magnitude below"
    )
    return result


if __name__ == "__main__":
    a, b = run()
    print(a)
    print()
    print(b)
    print()
    print(run_energy())
