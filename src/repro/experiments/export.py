"""Export experiment results and profiles to JSON / CSV / markdown."""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, TYPE_CHECKING

from repro.experiments.runner import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.profile import ModelProfile, ProfileDiff


def to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """A plain-JSON-serializable view of one experiment."""
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [dict(row) for row in result.rows],
        "notes": list(result.notes),
        "metrics": dict(result.metrics),
    }


def from_dict(payload: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`to_dict` (used by the on-disk result cache)."""
    return ExperimentResult(
        exp_id=payload["exp_id"],
        title=payload["title"],
        columns=list(payload["columns"]),
        rows=[dict(row) for row in payload["rows"]],
        notes=list(payload.get("notes", ())),
        metrics=dict(payload.get("metrics", {})),
    )


def to_json(result: ExperimentResult, indent: int = 2) -> str:
    return json.dumps(to_dict(result), indent=indent, default=str)


def to_csv(result: ExperimentResult) -> str:
    """CSV with one header row; non-scalar cells are stringified."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=result.columns)
    writer.writeheader()
    for row in result.rows:
        writer.writerow({c: row[c] for c in result.columns})
    return buffer.getvalue()


def write(result: ExperimentResult, path: str) -> None:
    """Write to *path*; the extension picks the format (.json / .csv)."""
    if path.endswith(".json"):
        payload = to_json(result)
    elif path.endswith(".csv"):
        payload = to_csv(result)
    else:
        payload = result.format() + "\n"
    with open(path, "w") as fh:
        fh.write(payload)


def render_profile(profile: "ModelProfile", fmt: str = "md") -> str:
    """One profile report as ``md`` / ``json`` / ``folded`` / ``table`` text."""
    if fmt == "json":
        return profile.to_json()
    if fmt == "folded":
        return profile.to_folded()
    if fmt == "table":
        return profile.to_table()
    return profile.to_markdown()


def write_profile(profile: "ModelProfile", path: str) -> None:
    """Write a cycle-attribution report; the extension picks the format.

    ``.json`` round-trips exactly (Fraction-preserving), ``.folded`` is
    flamegraph input (one ``stack;frame count`` line per category), and
    ``.md`` / anything else is the human-readable markdown report.
    """
    if path.endswith(".json"):
        payload = render_profile(profile, "json")
    elif path.endswith(".folded"):
        payload = render_profile(profile, "folded")
    else:
        payload = render_profile(profile, "md")
    with open(path, "w") as fh:
        fh.write(payload)


def write_profile_diff(diff: "ProfileDiff", path: str) -> None:
    """Write an overhead-decomposition diff (.json, else markdown table)."""
    if path.endswith(".json"):
        payload = diff.to_json()
    else:
        payload = diff.to_table(markdown=True)
    with open(path, "w") as fh:
        fh.write(payload)
