"""Fig. 17 — NoC application test: multi-core DNN pipelines.

Paper claim: "By leveraging peephole-based NoC, we observe a nearly 20%
reduction in overall execution time for different ML workloads compared
to the software NoC", with no loss versus the unauthorized NoC.
"""

from __future__ import annotations

from typing import Optional

from repro.driver.compiler import TilingCompiler
from repro.experiments.runner import ExperimentResult
from repro.memory.dram import DRAMModel
from repro.noc.mesh import Mesh
from repro.npu.config import NPUConfig
from repro.npu.multicore import NPUComplex
from repro.workloads import zoo


def run(
    profile: str = "eval",
    n_cores: int = 4,
    frames: int = 8,
    config: Optional[NPUConfig] = None,
) -> ExperimentResult:
    config = config or NPUConfig.paper_default()
    compiler = TilingCompiler(config)
    complex_ = NPUComplex(
        config, Mesh(2, 5), DRAMModel(config.dram_bytes_per_cycle)
    )
    result = ExperimentResult(
        exp_id="fig17",
        title=f"Multi-core ({n_cores} cores) performance by NoC method "
        "(normalized to unauthorized NoC)",
        columns=["workload", "unauthorized", "peephole", "software"],
    )
    for model in zoo.paper_models(profile):
        program = compiler.compile(model)
        base = complex_.run_pipeline(program, n_cores, "unauthorized", frames)
        peephole = complex_.run_pipeline(program, n_cores, "peephole", frames)
        software = complex_.run_pipeline(program, n_cores, "software", frames)
        result.add_row(
            workload=model.name,
            unauthorized=1.0,
            peephole=peephole.normalized_to(base),
            software=software.normalized_to(base),
        )
    mean_sw = sum(r["software"] for r in result.rows) / len(result.rows)
    result.notes.append(
        f"mean software-NoC normalized performance {mean_sw:.3f} "
        f"(paper: peephole ~20% faster than software NoC); peephole == "
        f"unauthorized"
    )
    return result


if __name__ == "__main__":
    print(run())
