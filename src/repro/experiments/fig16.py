"""Fig. 16 — NoC micro-test: transfer cost of software NoC vs direct NoC.

Paper claim: "our peephole mechanism can nearly reduce latency by
two-thirds, leading to a triple improvement in bandwidth compared with
memory sharing.  Moreover, peephole has no performance loss compared to
the unauthorized NoC."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import telemetry
from repro.experiments.runner import ExperimentResult
from repro.memory.dram import DRAMModel
from repro.noc.mesh import Mesh
from repro.noc.router import NoCFabric, NoCPolicy
from repro.noc.software_noc import SoftwareNoC
from repro.npu.config import NPUConfig

DEFAULT_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    config: Optional[NPUConfig] = None,
) -> ExperimentResult:
    """Latency (cycles) per transaction size (scratchpad lines)."""
    config = config or NPUConfig.paper_default()
    mesh = Mesh(2, 5)
    dram = DRAMModel(config.dram_bytes_per_cycle)
    software = SoftwareNoC(dram)
    result = ExperimentResult(
        exp_id="fig16",
        title="NoC micro-test: per-transfer latency (cycles)",
        columns=[
            "lines", "bytes", "software", "unauthorized", "peephole",
            "software_over_peephole",
        ],
    )
    for lines in sizes:
        nbytes = lines * config.spad_line_bytes
        unauth = NoCFabric(
            mesh, NoCPolicy.UNAUTHORIZED, config.noc_hop_cycles,
            config.noc_flit_bytes,
        ).transfer(0, 1, nbytes)
        peephole = NoCFabric(
            mesh, NoCPolicy.PEEPHOLE, config.noc_hop_cycles,
            config.noc_flit_bytes,
        ).transfer(0, 1, nbytes)
        sw = software.latency_cycles(nbytes)
        result.add_row(
            lines=lines,
            bytes=nbytes,
            software=sw,
            unauthorized=unauth,
            peephole=peephole,
            software_over_peephole=sw / peephole,
        )
    big = result.rows[-1]
    result.notes.append(
        f"at {big['lines']} lines the software NoC is "
        f"{big['software_over_peephole']:.1f}x slower (paper: ~3x); "
        f"peephole == unauthorized at every size"
    )
    if telemetry.flows.enabled:
        # Per-request corroboration of "no performance loss": every NoC
        # flow's peephole stage cost exactly zero security cycles.
        from repro.analysis.flows import FlowReport

        report = FlowReport(telemetry.flows.records)
        result.notes.append(
            f"flow tracing: {len(report.records)} NoC flows, security "
            f"cycles {float(report.security):.1f} (peephole checks are "
            f"free: expected 0.0)"
        )
    return result


if __name__ == "__main__":
    print(run())
