"""Fig. 14 — normalized performance under different flushing granularities.

Paper claim: fine-grained flushing (tile) costs "about 25% slowdown";
coarse granularities have minor overhead but cannot meet SLAs.
"""

from __future__ import annotations

from typing import Optional

from repro.driver.scheduler import MultiTaskScheduler
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig
from repro.workloads import zoo

GRANULARITIES = ("tile", "layer", "layer5")


def run(
    profile: str = "eval", config: Optional[NPUConfig] = None
) -> ExperimentResult:
    config = config or NPUConfig.paper_default()
    scheduler = MultiTaskScheduler(config)
    result = ExperimentResult(
        exp_id="fig14",
        title="Normalized performance under flushing granularities",
        columns=["workload"] + list(GRANULARITIES),
    )
    for model in zoo.paper_models(profile):
        row = {"workload": model.name}
        for granularity in GRANULARITIES:
            row[granularity] = scheduler.flush_slowdown(model, granularity)
        result.rows.append(row)
    mean_tile = sum(r["tile"] for r in result.rows) / len(result.rows)
    result.notes.append(
        f"mean tile-granularity performance {mean_tile:.3f} "
        f"(paper: ~25% slowdown, i.e. ~0.75-0.80 normalized)"
    )
    return result


if __name__ == "__main__":
    print(run())
