"""watch — live observability timeline of one serving run.

Serves the ``nlp-mix`` scenario under sNPU with streaming windows
enabled and reports the per-window timeline an operator would have
watched scroll past: arrivals, completions, SLA hits, flush and
world-switch activity, plus the burn-rate alert transitions of the
built-in SLO spec evaluated *online* over the same windows.  Everything
is keyed on simulated cycles, so the table is as deterministic as the
serving simulation itself — the golden-figure suite pins it.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig
from repro.serving.queueing import ServeSimulator
from repro.serving.workload import SCENARIOS
from repro.telemetry.slo import default_spec, evaluate

#: Simulated admission-window length per profile (ms).
DURATIONS = {"tiny": 200.0, "eval": 400.0, "paper": 800.0}

SEED = 0
WINDOW_MS = 50.0
SCENARIO = "nlp-mix"
MECHANISM = "snpu"


def run(
    profile: str = "eval", config: Optional[NPUConfig] = None
) -> ExperimentResult:
    if profile not in DURATIONS:
        raise ConfigError(f"unknown profile {profile!r}")
    config = config or NPUConfig.paper_default()
    scenario = SCENARIOS[SCENARIO]
    sim = ServeSimulator(
        scenario, mechanism=MECHANISM, seed=SEED,
        duration_ms=DURATIONS[profile], config=config, window_ms=WINDOW_MS,
    )
    outcome = sim.run()
    windows = outcome.windows
    assert windows is not None  # window_ms was set
    timeline = windows.timeline()

    spec = default_spec(
        SCENARIO,
        {t.name: t.sla_ms for t in scenario.tenants},
        window_ms=WINDOW_MS,
    )
    slo = evaluate(spec, timeline)
    alerts_at = {}
    for event in slo.alerts:
        alerts_at[event.window] = alerts_at.get(event.window, 0) + 1

    result = ExperimentResult(
        exp_id="watch",
        title=f"Live window timeline ({SCENARIO} under {MECHANISM}, "
              f"{WINDOW_MS:g} ms windows)",
        columns=["window", "end_ms", "arrivals", "completions", "sla_ok",
                 "flushes", "world_switches", "alerts"],
    )
    cycles_per_ms = config.freq_ghz * 1e6
    for record in timeline:
        tenants = record["tenants"]
        result.add_row(
            window=record["window"],
            end_ms=record["end_cycle"] / cycles_per_ms,
            arrivals=sum(t["arrivals"] for t in tenants.values()),
            completions=sum(t["completions"] for t in tenants.values()),
            sla_ok=sum(t["sla_ok"] for t in tenants.values()),
            flushes=record["flushes"],
            world_switches=record["world_switches"],
            alerts=alerts_at.get(record["window"], 0),
        )
    result.notes.append(
        f"{len(outcome.completed)} requests over {len(timeline)} windows; "
        f"window partial sums reconcile exactly with run totals "
        f"(Fraction-exact, enforced at close)"
    )
    result.notes.append(
        f"built-in SLO spec ({len(spec.objectives)} objectives, "
        f"burn>{spec.burn_threshold:g} over {spec.fast_windows}/"
        f"{spec.slow_windows} windows): "
        f"{len(slo.fired)} alert(s) fired, {len(slo.breaches)} window "
        f"breach(es)"
    )
    return result


if __name__ == "__main__":
    print(run())
