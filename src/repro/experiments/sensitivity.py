"""Scratchpad-size sensitivity curves — the mechanism behind Fig. 15.

"Diverse workloads exhibit varying behaviors upon the size of scratchpads
...  Yololite and mobilenet demonstrate insensitivity to the scratchpad
size, due to their well-orchestrated compute and memory interleave
pipeline.  However, the performance of alexnet and bert fluctuate
violently according to the different sizes of scratchpad" (§VI-C).

This experiment sweeps each workload's scratchpad budget under bandwidth
contention (the co-run regime of Fig. 15) and reports the slowdown curve —
the quantity the driver's allocation policy needs, and the reason a single
static partition cannot fit every pair.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.driver.scheduler import MultiTaskScheduler
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig
from repro.workloads import zoo

DEFAULT_FRACTIONS = (1.0, 0.75, 0.5, 0.25, 0.125)


def run(
    profile: str = "eval",
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    config: Optional[NPUConfig] = None,
) -> ExperimentResult:
    """Per-model slowdown vs scratchpad fraction at half DRAM bandwidth."""
    config = config or NPUConfig.paper_default()
    scheduler = MultiTaskScheduler(config)
    result = ExperimentResult(
        exp_id="sensitivity",
        title="Slowdown vs scratchpad fraction (at half DRAM bandwidth, "
        "normalized to the full scratchpad)",
        columns=["workload"] + [f"spad-{f:g}" for f in fractions]
        + ["swing"],
    )
    for model in zoo.paper_models(profile):
        base = scheduler.run(
            model, budget=config.spad_bytes, share=0.5
        ).cycles
        row = {"workload": model.name}
        values = []
        for fraction in fractions:
            budget = max(
                4 * config.array_dim * config.array_dim,
                int(config.spad_bytes * fraction),
            )
            cycles = scheduler.run(model, budget=budget, share=0.5).cycles
            norm = cycles / base
            row[f"spad-{fraction:g}"] = norm
            values.append(norm)
        row["swing"] = max(values) - min(values)
        result.rows.append(row)
    swings = {r["workload"]: r["swing"] for r in result.rows}
    result.notes.append(
        "sensitive (paper: alexnet/bert-style) vs insensitive (yololite/"
        "mobilenet-style) spread: "
        + ", ".join(f"{k}={v:.2f}" for k, v in swings.items())
    )
    return result


if __name__ == "__main__":
    print(run())
