"""Fig. 15 — multi-task performance: static partition vs ID-based dynamic.

Three pairs of workloads run in parallel on separate cores sharing the
scratchpad capacity and DRAM channel.  Static partitions of 3/4, 1/2, 1/4
(secure task's share) are compared against sNPU's ID-based dynamic
allocation with the total-best strategy.  The paper does not name the
pairing; ours mixes scratchpad-sensitive models (alexnet, bert) with
insensitive ones (yololite, mobilenet), matching its discussion.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.driver.scheduler import MultiTaskScheduler
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig
from repro.workloads import zoo

PAIRS: Tuple[Tuple[str, str], ...] = (
    ("googlenet", "yololite"),
    ("alexnet", "mobilenet"),
    ("resnet", "bert"),
)
SPLITS = (0.75, 0.5, 0.25)


def run(
    profile: str = "eval", config: Optional[NPUConfig] = None
) -> ExperimentResult:
    config = config or NPUConfig.paper_default()
    scheduler = MultiTaskScheduler(config)
    models = {m.name: m for m in zoo.paper_models(profile)}
    result = ExperimentResult(
        exp_id="fig15",
        title="Static partition vs ID-based dynamic scratchpad sharing "
        "(normalized execution time, lower is better)",
        columns=["pair", "policy", "secure_task", "nonsecure_task", "total"],
    )
    for a, b in PAIRS:
        model_a, model_b = models[a], models[b]
        for split in SPLITS:
            res = scheduler.spatial_pair(model_a, model_b, "partition", split)
            result.add_row(
                pair=f"{a}/{b}",
                policy=f"partition-{split:g}",
                secure_task=res.norm_a,
                nonsecure_task=res.norm_b,
                total=res.total_norm,
            )
        dyn = scheduler.spatial_pair(model_a, model_b, "dynamic")
        result.add_row(
            pair=f"{a}/{b}",
            policy=f"dynamic(split={dyn.split:g})",
            secure_task=dyn.norm_a,
            nonsecure_task=dyn.norm_b,
            total=dyn.total_norm,
        )
    result.notes.append(
        "the dynamic policy searches splits and lets the survivor expand; "
        "its total is never worse than any static partition"
    )
    return result


if __name__ == "__main__":
    print(run())
