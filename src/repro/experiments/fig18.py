"""Fig. 18 — additional FPGA resources of each protection mechanism.

Paper claim: sNPU "requires only an additional 1% of RAM resources
(S_Spad), with negligible impact on LUTs and FFs compared to the baseline
NPU", while the TrustZone NPU's IOMMU consumes more resources.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.hwcost import hardware_cost_report
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig


def run(config: Optional[NPUConfig] = None) -> ExperimentResult:
    rows = hardware_cost_report(config or NPUConfig.paper_default())
    result = ExperimentResult(
        exp_id="fig18",
        title="Additional FPGA resources over the baseline NPU (%)",
        columns=["component", "luts_pct", "ffs_pct", "ram_pct"],
    )
    for row in rows:
        result.add_row(
            component=row["component"],
            luts_pct=row["luts_pct"],
            ffs_pct=row["ffs_pct"],
            ram_pct=row["ram_pct"],
        )
    result.notes.append(
        "S_Spad costs ~1% RAM; S_Reg/S_NoC are fractions of a percent; the "
        "IOMMU's CAM + page walker dominate every sNPU extension"
    )
    return result


if __name__ == "__main__":
    print(run())
