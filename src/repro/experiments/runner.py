"""Shared experiment plumbing: result container and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows of named columns plus notes."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Telemetry snapshot captured while the experiment ran (see
    #: :mod:`repro.telemetry`); populated by the experiment harness.
    metrics: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ConfigError(f"row missing columns {missing}")
        unknown = [k for k in values if k not in self.columns]
        if unknown:
            raise ConfigError(
                f"row has unknown columns {unknown} "
                f"(declared: {self.columns})"
            )
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        if name not in self.columns:
            raise ConfigError(f"no column {name!r} in {self.exp_id}")
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key: Any) -> Dict[str, Any]:
        for row in self.rows:
            if row[key_column] == key:
                return row
        raise ConfigError(f"no row with {key_column}={key!r} in {self.exp_id}")

    def format(self) -> str:
        return format_table(self)

    def __str__(self) -> str:
        return self.format()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    header = [result.columns]
    body = [[_fmt(row[c]) for c in result.columns] for row in result.rows]
    widths = [
        max(len(line[i]) for line in header + body)
        for i in range(len(result.columns))
    ]
    lines = [f"== {result.exp_id}: {result.title} =="]
    lines.append("  ".join(c.ljust(w) for c, w in zip(result.columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
