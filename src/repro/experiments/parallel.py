"""Process-pool experiment executor with content-addressed caching.

``repro all --jobs N`` fans the registered experiments out across *N*
worker processes.  Three properties make the fan-out trustworthy:

* **Determinism** — every experiment runs under a deterministic seed
  derived only from ``(exp_id, profile)`` (see
  :func:`repro.sim.worker.stable_seed`), inside its own
  ``telemetry.scoped`` block, in a worker whose globals were reset by
  :func:`repro.sim.worker.init_worker`.  Row data is therefore
  bit-identical between ``--jobs 1`` and ``--jobs N``
  (``tests/integration/test_parallel_determinism.py`` enforces it).
* **Scheduling** — the registry's cost hints drive longest-first
  dispatch and declared dependencies are honoured, so the makespan
  approaches the cost of the single most expensive experiment.
* **Caching** — results are stored in a content-addressed on-disk cache
  (:mod:`repro.experiments.cache`); an unchanged (experiment, profile,
  config, source tree) is served from disk and reported as a hit.

Per-worker telemetry snapshots come back with each result and are merged
into one registry view via :func:`repro.telemetry.merge_snapshots`.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro import telemetry
from repro.experiments import export
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import ExperimentResult
from repro.sim.worker import init_worker, seed_rngs, stable_seed
from repro.store import ingest_quietly
from repro.store.ingest import record_from_experiment

PAYLOAD_VERSION = 1


def _experiment_record(outcome: "ExperimentOutcome", profile: str):
    """The golden-comparable archive row of one outcome (figure data
    stripped of its metrics section, same shape as tests/golden)."""
    payloads = []
    for result in outcome.results:
        payload = export.to_dict(result)
        payload.pop("metrics", None)
        payloads.append(payload)
    return record_from_experiment(
        exp_id=outcome.exp_id,
        profile=profile,
        seed=stable_seed(outcome.exp_id, profile),
        figure_payload={"profile": profile, "results": payloads},
        metrics=outcome.metrics,
    )


@dataclass
class ExperimentOutcome:
    """One experiment's results plus execution metadata."""

    exp_id: str
    results: List[ExperimentResult]
    #: Telemetry snapshot captured in whichever process ran it.
    metrics: Dict[str, Any]
    #: Wall-clock seconds of the *producing* run (a cache hit reports
    #: the original runtime, not the time to load the entry).
    elapsed: float
    cached: bool = False
    pid: int = 0


@dataclass
class ParallelRun:
    """Everything ``run_parallel`` learned about one batch."""

    outcomes: List[ExperimentOutcome]
    profile: str
    jobs: int
    wall_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    #: Cross-process union of every outcome's telemetry snapshot.
    merged_metrics: Dict[str, Any] = field(default_factory=dict)

    def timing_table(self) -> ExperimentResult:
        """Per-experiment timing as a printable table."""
        table = ExperimentResult(
            exp_id="timing",
            title=f"Per-experiment wall clock (profile={self.profile}, "
                  f"jobs={self.jobs})",
            columns=["experiment", "status", "seconds", "rows"],
        )
        for outcome in self.outcomes:
            table.add_row(
                experiment=outcome.exp_id,
                status="cache-hit" if outcome.cached else "ran",
                seconds=outcome.elapsed,
                rows=sum(len(r.rows) for r in outcome.results),
            )
        busy = sum(o.elapsed for o in self.outcomes if not o.cached)
        table.notes.append(
            f"total wall {self.wall_seconds:.1f}s, busy {busy:.1f}s, "
            f"{self.cache_hits} cache hit(s), {self.cache_misses} miss(es)"
        )
        return table


def _execute(exp_id: str, profile: str) -> Dict[str, Any]:
    """Run one experiment and return a process-portable payload.

    Runs in a pool worker (or inline for ``--jobs 1`` — same code path,
    same seeding, which is what makes the two modes bit-identical).
    """
    from repro.experiments.all import run_one

    seed_rngs(stable_seed(exp_id, profile))
    started = time.time()
    results = run_one(exp_id, profile, outdir=None)
    metrics = dict(results[0].metrics) if results else {}
    return {
        "version": PAYLOAD_VERSION,
        "exp_id": exp_id,
        "profile": profile,
        "elapsed": time.time() - started,
        "pid": os.getpid(),
        "metrics": metrics,
        "results": [export.to_dict(r) for r in results],
    }


def _outcome_from_payload(
    payload: Dict[str, Any], cached: bool
) -> ExperimentOutcome:
    return ExperimentOutcome(
        exp_id=payload["exp_id"],
        results=[export.from_dict(d) for d in payload["results"]],
        metrics=dict(payload.get("metrics", {})),
        elapsed=float(payload.get("elapsed", 0.0)),
        cached=cached,
        pid=int(payload.get("pid", 0)),
    )


def _write_outdir(outdir: str, outcome: ExperimentOutcome) -> None:
    os.makedirs(outdir, exist_ok=True)
    for result in outcome.results:
        export.write(result, os.path.join(outdir, f"{result.exp_id}.json"))
    path = os.path.join(outdir, f"{outcome.exp_id}.metrics.json")
    with open(path, "w") as fh:
        json.dump(outcome.metrics, fh, indent=2, default=str, sort_keys=True)


def run_parallel(
    exp_ids: Optional[Iterable[str]] = None,
    profile: str = "eval",
    jobs: int = 1,
    outdir: Optional[str] = None,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> ParallelRun:
    """Execute experiments across *jobs* processes, cache-aware.

    *exp_ids* defaults to every registered ``in_all`` experiment.
    Outcomes come back in registry schedule order regardless of which
    worker finished first, so printed output is stable.  The merged
    telemetry view is also folded into the process-global registry when
    one is live (``telemetry.scoped``), giving callers a single-registry
    view of the whole batch.
    """
    from repro.experiments.all import REGISTRY

    if jobs < 1:
        jobs = 1
    schedule = REGISTRY.schedule(exp_ids)
    order = {spec.exp_id: i for i, spec in enumerate(schedule)}
    started = time.time()

    cache = ResultCache(cache_dir) if use_cache else None
    outcomes: Dict[str, ExperimentOutcome] = {}
    keys: Dict[str, str] = {}
    to_run: List[str] = []
    for spec in schedule:
        if cache is not None:
            keys[spec.exp_id] = cache_key(spec.exp_id, profile)
            payload = cache.get(keys[spec.exp_id])
            if payload is not None and payload.get("profile") == profile:
                outcomes[spec.exp_id] = _outcome_from_payload(payload, cached=True)
                continue
        to_run.append(spec.exp_id)

    def finish(payload: Dict[str, Any]) -> None:
        exp_id = payload["exp_id"]
        if cache is not None:
            cache.put(keys[exp_id], payload)
        outcomes[exp_id] = _outcome_from_payload(payload, cached=False)

    if jobs == 1 or len(to_run) <= 1:
        for exp_id in to_run:
            finish(_execute(exp_id, profile))
    else:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs,
            initializer=init_worker,
            initargs=(stable_seed("repro-worker", profile),),
        ) as pool:
            pending = list(to_run)
            running: Dict[concurrent.futures.Future, str] = {}
            while pending or running:
                for exp_id in REGISTRY.ready(outcomes, pending, batch=order):
                    future = pool.submit(_execute, exp_id, profile)
                    running[future] = exp_id
                    pending.remove(exp_id)
                if not running:  # pragma: no cover - schedule() rejects cycles
                    raise RuntimeError("deadlocked experiment dependencies")
                finished, _ = concurrent.futures.wait(
                    running, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in finished:
                    del running[future]
                    finish(future.result())

    ordered = sorted(outcomes.values(), key=lambda o: order[o.exp_id])
    if outdir:
        for outcome in ordered:
            _write_outdir(outdir, outcome)

    # Archive every outcome into the run store from the *parent* process
    # only, after schedule ordering: pool workers never touch the sqlite
    # file (no contention) and the archived rows are the same for
    # --jobs 1 and --jobs N (test_store_cli enforces byte-equality).
    for outcome in ordered:
        ingest_quietly(_experiment_record(outcome, profile))

    merged = telemetry.merge_snapshots(o.metrics for o in ordered)
    if telemetry.metrics.enabled:
        telemetry.metrics.ingest_snapshot(merged)

    hits = sum(1 for o in ordered if o.cached)
    return ParallelRun(
        outcomes=ordered,
        profile=profile,
        jobs=jobs,
        wall_seconds=time.time() - started,
        cache_hits=hits,
        cache_misses=len(ordered) - hits,
        merged_metrics=merged,
    )
