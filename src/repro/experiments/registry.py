"""Experiment registry: declared specs with cost hints and dependencies.

Every reproduced table/figure is registered as an :class:`ExperimentSpec`
naming its runner, a relative **cost hint** (used by the parallel
executor to schedule longest-first, which minimises makespan under a
process pool), and optional **dependencies** on other experiments (an
experiment is never dispatched before everything it depends on has
completed).  The registry is the single dispatch point shared by
``repro experiments``, :func:`repro.experiments.all.run_all` and the
parallel runner in :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered table/figure."""

    exp_id: str
    #: ``runner(profile)`` returning one :class:`ExperimentResult` or a
    #: tuple of them.
    runner: Callable[[str], Any]
    #: Relative wall-clock cost (any unit, consistent across specs).  The
    #: scheduler dispatches the most expensive ready experiment first.
    cost: float = 1.0
    #: Experiment ids that must complete before this one may start.
    deps: Tuple[str, ...] = ()
    #: Excluded from ``repro all`` when False (still runnable by id).
    in_all: bool = True
    description: str = ""


class ExperimentRegistry:
    """Ordered collection of :class:`ExperimentSpec` with scheduling."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(
        self,
        exp_id: str,
        runner: Callable[[str], Any],
        cost: float = 1.0,
        deps: Iterable[str] = (),
        in_all: bool = True,
        description: str = "",
    ) -> ExperimentSpec:
        if exp_id in self._specs:
            raise ConfigError(f"experiment {exp_id!r} already registered")
        deps = tuple(deps)
        for dep in deps:
            if dep not in self._specs:
                raise ConfigError(
                    f"experiment {exp_id!r} depends on unregistered {dep!r}"
                )
        spec = ExperimentSpec(
            exp_id=exp_id, runner=runner, cost=float(cost), deps=deps,
            in_all=in_all, description=description,
        )
        self._specs[exp_id] = spec
        return spec

    def get(self, exp_id: str) -> ExperimentSpec:
        try:
            return self._specs[exp_id]
        except KeyError:
            raise ConfigError(
                f"unknown experiment {exp_id!r}; registered: "
                f"{', '.join(self._specs)}"
            ) from None

    def __contains__(self, exp_id: str) -> bool:
        return exp_id in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def ids(self, all_only: bool = False) -> List[str]:
        return [
            s.exp_id for s in self._specs.values()
            if s.in_all or not all_only
        ]

    # -- scheduling ----------------------------------------------------
    def schedule(self, exp_ids: Optional[Iterable[str]] = None) -> List[ExperimentSpec]:
        """Dependency-respecting dispatch order, costliest-first.

        Returns the requested specs (default: everything with
        ``in_all=True``) topologically sorted by ``deps``, breaking ties
        by descending cost then registration order — the order a
        longest-first list scheduler should offer work to idle workers.
        Dependencies are ordering constraints *within* the requested
        batch; a dependency outside the batch is treated as satisfied
        (running ``fig13-energy`` alone must not drag in ``fig13``).
        """
        if exp_ids is None:
            wanted = [s.exp_id for s in self._specs.values() if s.in_all]
        else:
            wanted = list(dict.fromkeys(self.get(e).exp_id for e in exp_ids))
        batch = set(wanted)

        order = {exp_id: i for i, exp_id in enumerate(wanted)}
        done: set = set()
        ready: List[str] = []
        pending = set(wanted)
        result: List[ExperimentSpec] = []
        while pending or ready:
            newly = [
                e for e in sorted(pending)
                if all(
                    d in done or d not in batch
                    for d in self._specs[e].deps
                )
            ]
            ready.extend(newly)
            pending -= set(newly)
            if not ready:
                cycle = ", ".join(sorted(pending))
                raise ConfigError(f"dependency cycle among: {cycle}")
            ready.sort(key=lambda e: (-self._specs[e].cost, order[e]))
            nxt = ready.pop(0)
            done.add(nxt)
            result.append(self._specs[nxt])
        return result

    def ready(
        self,
        done: Iterable[str],
        pending: Iterable[str],
        batch: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Subset of *pending* whose in-batch dependencies are all in
        *done*, costliest-first (the pool dispatcher calls this as
        workers free up).  *batch* defaults to ``done | pending``; a
        dependency outside it is treated as satisfied."""
        done = set(done)
        pending = list(pending)
        batch = set(batch) if batch is not None else done | set(pending)
        ready = [
            e for e in pending
            if all(d in done or d not in batch for d in self.get(e).deps)
        ]
        ready.sort(key=lambda e: -self.get(e).cost)
        return ready
