"""Experiment harness: one module per table/figure of the evaluation.

Every module exposes ``run(profile=...) -> ExperimentResult`` (or a small
number of them) and can be executed directly::

    python -m repro.experiments.fig13

The benchmark suite (``benchmarks/``) drives the same entry points and
asserts the paper's qualitative shapes.
"""

from repro.experiments.runner import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
