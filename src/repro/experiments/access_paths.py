"""Access-path comparison — quantifying the Fig. 2 taxonomy.

The paper argues qualitatively that none of the three existing integrated-
NPU access paths (Type-1 IOMMU, Type-2 MMU + system DMA, Type-3
CPU-coupled) gives a unified, zero-cost controller — which is the design
space the Guarder fills.  This extension experiment runs the six workloads
under all four paths and reports normalized performance.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.driver.compiler import TilingCompiler
from repro.experiments.fig13 import _guarder_for_run, _identity_table
from repro.experiments.runner import ExperimentResult
from repro.memory.dram import DRAMModel
from repro.mmu.access_paths import Type2MMU, Type3CpuCoupled
from repro.mmu.iommu import IOMMU
from repro.npu.config import NPUConfig
from repro.npu.core import NPUCore
from repro.workloads import zoo


def run(
    profile: str = "eval", config: Optional[NPUConfig] = None
) -> ExperimentResult:
    config = config or NPUConfig.paper_default()
    compiler = TilingCompiler(config)
    dram = DRAMModel(config.dram_bytes_per_cycle)
    result = ExperimentResult(
        exp_id="access-paths",
        title="Normalized performance by integrated-NPU access path (Fig. 2 "
        "taxonomy; guarder = 1.0)",
        columns=[
            "workload", "guarder", "type1_iommu", "type2_mmu", "type3_cpu",
        ],
    )
    for model in zoo.paper_models(profile):
        program = compiler.compile(model)
        base = NPUCore(config, _guarder_for_run(), dram).run_detailed(program)

        def norm(controller) -> float:
            run_ = NPUCore(config, controller, dram).run_detailed(program)
            return base.cycles / run_.cycles

        result.add_row(
            workload=model.name,
            guarder=1.0,
            type1_iommu=norm(IOMMU(_identity_table(program), 16)),
            type2_mmu=norm(
                Type2MMU(
                    _identity_table(program),
                    mmu_tlb_entries=16,
                    dram_bytes_per_cycle=config.dram_bytes_per_cycle,
                )
            ),
            type3_cpu=norm(Type3CpuCoupled(_identity_table(program))),
        )
    means = {
        c: sum(r[c] for r in result.rows) / len(result.rows)
        for c in ("type1_iommu", "type2_mmu", "type3_cpu")
    }
    result.notes.append(
        "means: "
        + ", ".join(f"{k}={v:.3f}" for k, v in means.items())
        + " - every legacy path costs runtime; the staged Type-2 copy is "
        "the most expensive, matching the paper's taxonomy argument"
    )
    return result


if __name__ == "__main__":
    print(run())
