"""cluster-sweep — sharded multi-NPU serving across balance policies.

The cluster-scale view of §IV-B: the ``default`` scenario's load,
scaled to a 2-worker fleet, served under the three headline mechanisms
x all four load-balancing policies.  Each cell runs the fluid +
sampled-detailed cluster path (``repro serve --workers``): the fluid
model covers a 100k-request horizon while a seed-stable detailed sample
per worker supplies the pooled percentiles, with the reconciliation
checks live — a row only exists if fluid and detailed agreed within
bounds.  The acceptance ordering (per-tenant p99 snpu < partition <
flush-tile) must survive sharding; the note at the bottom says whether
it did under ``rr`` balancing.
"""

from __future__ import annotations

from typing import Optional

from repro.driver.scheduler import MultiTaskScheduler
from repro.errors import ConfigError
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig
from repro.serving.cluster import CLUSTER_POLICIES, ClusterSimulator
from repro.serving.workload import SCENARIOS

#: Detailed-sample window (ms per worker) per profile; the fluid
#: request horizon is fixed at 100k requests either way.
DETAIL_MS = {"tiny": 150.0, "eval": 400.0, "paper": 2000.0}

MECHANISMS = ("snpu", "partition", "flush-tile")
WORKERS = 2
REQUESTS = 100_000
SEED = 0


def run(
    profile: str = "eval", config: Optional[NPUConfig] = None
) -> ExperimentResult:
    if profile not in DETAIL_MS:
        raise ConfigError(f"unknown profile {profile!r}")
    config = config or NPUConfig.paper_default()
    scheduler = MultiTaskScheduler(config)  # shared analytic-run cache
    scenario = SCENARIOS["default"]
    detail_ms = DETAIL_MS[profile]
    result = ExperimentResult(
        exp_id="cluster-sweep",
        title=f"Sharded cluster serving sweep ({WORKERS} workers, "
              f"{REQUESTS} requests)",
        columns=["mechanism", "balance", "detailed", "util_max",
                 "p50_ms", "p99_ms", "sla_min", "recon_worst"],
    )
    rr_reports = {}
    for mechanism in MECHANISMS:
        for balance in CLUSTER_POLICIES:
            sim = ClusterSimulator(
                scenario, mechanism=mechanism, balance=balance,
                workers=WORKERS, requests=REQUESTS, seed=SEED,
                detail_ms=detail_ms, config=config, scheduler=scheduler,
            )
            report = sim.run()
            if balance == "rr":
                rr_reports[mechanism] = report
            attainments = [
                t.sla_attainment for t in report.tenants
                if t.sla_attainment is not None
            ]
            recon_worst = max(
                (c["observed"] / c["bound"] for c in report.reconciliation
                 if c["bound"]),
                default=0.0,
            )
            agg = report.aggregate
            result.add_row(
                mechanism=mechanism,
                balance=balance,
                detailed=report.requests_detailed,
                util_max=max(f.utilization for f in report.fluid),
                p50_ms=agg.p50_ms,
                p99_ms=agg.p99_ms,
                sla_min=min(attainments) if attainments else None,
                recon_worst=recon_worst,
            )
    ordered = all(
        rr_reports["snpu"].tenant(spec.name).p99_ms
        < rr_reports["partition"].tenant(spec.name).p99_ms
        < rr_reports["flush-tile"].tenant(spec.name).p99_ms
        for spec in scenario.tenants
    )
    result.notes.append(
        f"per-tenant p99 ordering snpu < partition < flush-tile "
        f"{'holds' if ordered else 'VIOLATED'} for every tenant under rr "
        f"balancing at {WORKERS} workers — the §IV-B dilemma survives "
        f"sharding"
    )
    return result


if __name__ == "__main__":
    print(run())
