"""serve-sweep — multi-tenant SLA attainment across isolation mechanisms.

The serving-side view of §IV-B's dilemma: temporal sharing must pick a
flush granularity and eats the scrub + context-switch cost at every
protection-domain change, the static partition halves the scratchpad
even for a lone request, and sNPU's ID-based isolation picks the best
split per pairing and lets survivors expand.  One seeded request stream
(the ``default`` scenario) is served under all five mechanisms; the
rows compare aggregate latency percentiles, SLA attainment and the
flush/world-switch overhead share.
"""

from __future__ import annotations

from typing import Optional

from repro.driver.scheduler import MultiTaskScheduler
from repro.errors import ConfigError
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig
from repro.serving.queueing import MECHANISMS, ServeSimulator
from repro.serving.report import ServeReport
from repro.serving.workload import SCENARIOS

#: Admission-window length per profile (ms of simulated traffic).  The
#: scenario's request *rate* is unchanged; longer windows tighten the
#: tail percentiles.
DURATIONS = {"tiny": 400.0, "eval": 800.0, "paper": 2000.0}

SEED = 0


def run(
    profile: str = "eval", config: Optional[NPUConfig] = None
) -> ExperimentResult:
    if profile not in DURATIONS:
        raise ConfigError(f"unknown profile {profile!r}")
    config = config or NPUConfig.paper_default()
    scheduler = MultiTaskScheduler(config)  # shared analytic-run cache
    scenario = SCENARIOS["default"]
    duration_ms = DURATIONS[profile]
    result = ExperimentResult(
        exp_id="serve-sweep",
        title="Multi-tenant serving SLA sweep (default scenario)",
        columns=["mechanism", "completed", "p50_ms", "p95_ms", "p99_ms",
                 "sla", "flush_share", "world_share"],
    )
    reports = {}
    for mechanism in MECHANISMS:
        sim = ServeSimulator(
            scenario, mechanism=mechanism, seed=SEED,
            duration_ms=duration_ms, config=config, scheduler=scheduler,
        )
        report = ServeReport.build(sim.run())
        reports[mechanism] = report
        agg = report.aggregate
        result.add_row(
            mechanism=mechanism,
            completed=agg.n,
            p50_ms=agg.p50_ms,
            p95_ms=agg.p95_ms,
            p99_ms=agg.p99_ms,
            sla=agg.sla_attainment,
            flush_share=report.flush_share,
            world_share=report.world_share,
        )
    ordered = all(
        reports["snpu"].tenant(spec.name).p99_ms
        < reports["partition"].tenant(spec.name).p99_ms
        < reports["flush-tile"].tenant(spec.name).p99_ms
        for spec in scenario.tenants
    )
    result.notes.append(
        f"per-tenant p99 ordering snpu < partition < flush-tile "
        f"{'holds' if ordered else 'VIOLATED'} for every tenant "
        f"at {duration_ms:.0f} ms — the SLA dilemma of §IV-B"
    )
    return result


if __name__ == "__main__":
    print(run())
