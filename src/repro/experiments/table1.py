"""Table I — comparison of scratchpad isolation mechanisms.

The paper's table is qualitative:

| mechanism              | temporal | spatial | utilization | perf | SLA  |
| partition              | yes      | yes     | low         | low  | good |
| flush (coarse-grained) | yes      | no      | low         | good | poor |
| flush (fine-grained)   | yes      | no      | low         | low  | good |
| sNPU                   | yes      | yes     | high        | good | good |

We regenerate the verdicts from *measured* quantities:

* **performance** — mean normalized performance of the six workloads
  under the mechanism (flush granularities from Fig. 14's machinery,
  partition/dynamic from Fig. 15's),
* **SLA** — worst-case preemption latency (cycles a high-priority task
  may wait before it can start),
* **utilization** — the scratchpad fraction a task may use when it is the
  only one that needs capacity.
"""

from __future__ import annotations

from typing import Optional

from repro.driver.scheduler import MultiTaskScheduler
from repro.experiments.runner import ExperimentResult
from repro.npu.config import NPUConfig
from repro.workloads import zoo

#: Verdict thresholds (documented, not tuned per row).
#: A mechanism's "performance" is its overhead relative to the zero-cost
#: oracle of the same sharing scenario; <= 2% overhead counts as Good.
PERF_GOOD_OVERHEAD = 1.02
#: SLA: a pending high-priority task must be able to start within 1 ms at
#: 1 GHz (spatial mechanisms admit it immediately: zero wait).
SLA_GOOD_CYCLES = 1_000_000.0
UTIL_HIGH = 0.95


def _verdict(value: bool, good: str = "Good", bad: str = "Low") -> str:
    return good if value else bad


def run(
    profile: str = "eval", config: Optional[NPUConfig] = None
) -> ExperimentResult:
    config = config or NPUConfig.paper_default()
    scheduler = MultiTaskScheduler(config)
    models = zoo.paper_models(profile)

    def mean_flush_perf(granularity: str) -> float:
        return sum(
            scheduler.flush_slowdown(m, granularity) for m in models
        ) / len(models)

    # Worst-case preemption latency across workloads (SLA view).
    def worst_quantum(mechanism: str) -> float:
        return max(
            scheduler.preemption_stats(m, mechanism).worst_wait_cycles
            for m in models
        )

    # Spatial mechanisms: overhead of a statically chosen partition (the
    # vendor fixes the split without knowing the workload mix; average
    # over the three splits) relative to sNPU's dynamic total-best oracle.
    pairs = [(models[0], models[2]), (models[1], models[3]), (models[4], models[5])]
    static_overheads = []
    for a, b in pairs:
        statics = [
            scheduler.spatial_pair(a, b, "partition", s).total_norm
            for s in (0.75, 0.5, 0.25)
        ]
        dynamic = scheduler.spatial_pair(a, b, "dynamic").total_norm
        static_overheads.append((sum(statics) / len(statics)) / dynamic)
    partition_overhead = sum(static_overheads) / len(static_overheads)

    result = ExperimentResult(
        exp_id="table1",
        title="Isolation mechanisms for the scratchpad",
        columns=[
            "mechanism", "temporal", "spatial", "utilization",
            "performance", "sla", "overhead", "worst_wait_cycles",
        ],
    )
    # Temporal mechanisms: overhead = slowdown vs the unflushed run.
    flush_coarse_ovh = 1.0 / mean_flush_perf("layer5")
    flush_fine_ovh = 1.0 / mean_flush_perf("tile")
    rows = [
        # mechanism, temporal, spatial, usable spad fraction, overhead, wait
        ("partition", "Yes", "Yes", 0.5, partition_overhead,
         worst_quantum("partition")),
        ("flush (coarse-grained)", "Yes", "No", 1.0, flush_coarse_ovh,
         worst_quantum("layer5")),
        ("flush (fine-grained)", "Yes", "No", 1.0, flush_fine_ovh,
         worst_quantum("tile")),
        ("sNPU", "Yes", "Yes", 1.0, 1.0, worst_quantum("snpu")),
    ]
    for name, temporal, spatial, util, overhead, wait in rows:
        # Partition strands capacity behind a fixed boundary; flushing
        # forbids spatial sharing entirely (one task owns the scratchpad).
        utilization = (
            "High" if (util >= UTIL_HIGH and spatial == "Yes") else "Low"
        )
        result.add_row(
            mechanism=name,
            temporal=temporal,
            spatial=spatial,
            utilization=utilization,
            performance=_verdict(
                overhead <= PERF_GOOD_OVERHEAD, "Good", "Low"
            ),
            sla=_verdict(wait <= SLA_GOOD_CYCLES, "Good", "Poor"),
            overhead=overhead,
            worst_wait_cycles=wait,
        )
    result.notes.append(
        "overhead is relative to the zero-cost oracle of the same sharing "
        "scenario; wait is the worst-case start delay of a high-priority "
        "task (spatial mechanisms admit immediately)"
    )
    return result


if __name__ == "__main__":
    print(run())
