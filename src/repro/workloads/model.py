"""Workload IR: network layers and their lowered GEMM/vector kernels.

A :class:`ModelGraph` is a linear list of layer specs (convolutions,
dense layers, pools, element-wise ops, attention matmuls).  ``lower()``
turns each layer into the kernels the NPU actually executes:

* :class:`GemmSpec` — a (possibly grouped/repeated) matrix multiply with
  explicit traffic accounting.  Convolutions lower to GEMM via on-the-fly
  im2col, so their *DRAM* input traffic is the raw feature map per pass,
  not the k²-inflated im2col matrix (``input_bytes_per_pass``).
* :class:`VectorSpec` — pooling / normalization / element-wise kernels
  with zero MACs that still move data (they drag FLOPS utilization down,
  which is the point of Fig. 1).

ReLU-style activations are folded into the producing kernel, as NPU
compilers do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.errors import ConfigError


@dataclass(frozen=True)
class GemmSpec:
    """One lowered matrix-multiply kernel: ``repeat`` independent M×K×N GEMMs.

    ``input_bytes_per_pass`` is the DRAM traffic needed to stream the whole
    A-operand once (per repeat); for im2col convolutions this is the raw
    input feature map, which is smaller than ``M*K``.
    """

    name: str
    m: int
    k: int
    n: int
    repeat: int = 1
    input_bytes_per_pass: int = 0
    weight_bytes: int = 0
    output_bytes: int = 0
    #: True when the B operand is an activation (attention), so it lives in
    #: the activation chunk rather than the weight chunk.
    b_is_activation: bool = False
    #: Receptive-field halo of a convolution: bytes of input re-touched by
    #: adjacent M-blocks (kernel > stride overlap).  Drives the short-
    #: distance page reuse that differentiates IOTLB sizes (Fig. 13a).
    input_halo_bytes: int = 0

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.repeat) < 1:
            raise ConfigError(f"degenerate GEMM {self.name!r}: {self}")
        if self.input_bytes_per_pass == 0:
            object.__setattr__(self, "input_bytes_per_pass", self.m * self.k)
        if self.weight_bytes == 0:
            object.__setattr__(self, "weight_bytes", self.k * self.n)
        if self.output_bytes == 0:
            object.__setattr__(self, "output_bytes", self.m * self.n)

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.repeat


@dataclass(frozen=True)
class VectorSpec:
    """One lowered element-wise / pooling kernel (no MACs)."""

    name: str
    elements: int
    in_bytes: int
    out_bytes: int
    #: Vector-unit operations per element (e.g. 9 for 3x3 max pooling).
    ops_per_element: int = 1

    def __post_init__(self) -> None:
        if self.elements < 1:
            raise ConfigError(f"degenerate vector kernel {self.name!r}")


Kernel = Union[GemmSpec, VectorSpec]


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ConfigError(
            f"convolution output collapsed: in={size} k={kernel} "
            f"s={stride} p={padding}"
        )
    return out


@dataclass(frozen=True)
class ConvSpec:
    """2-D convolution (optionally grouped / depthwise)."""

    name: str
    in_h: int
    in_w: int
    in_c: int
    out_c: int
    kernel: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        if self.in_c % self.groups or self.out_c % self.groups:
            raise ConfigError(
                f"{self.name!r}: channels {self.in_c}->{self.out_c} not "
                f"divisible by groups={self.groups}"
            )

    @property
    def out_h(self) -> int:
        return _conv_out(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        return _conv_out(self.in_w, self.kernel, self.stride, self.padding)

    def lower(self) -> List[Kernel]:
        m = self.out_h * self.out_w
        k = (self.in_c // self.groups) * self.kernel * self.kernel
        n = self.out_c // self.groups
        raw_input = self.in_h * self.in_w * (self.in_c // self.groups)
        halo_rows = max(0, self.kernel - self.stride)
        halo = halo_rows * self.in_w * (self.in_c // self.groups)
        return [
            GemmSpec(
                name=self.name,
                m=m,
                k=k,
                n=n,
                repeat=self.groups,
                input_bytes_per_pass=raw_input,
                weight_bytes=k * n,
                output_bytes=m * n,
                input_halo_bytes=halo,
            )
        ]


@dataclass(frozen=True)
class DenseSpec:
    """Fully connected layer; ``batch`` rows at once (1 for inference)."""

    name: str
    in_features: int
    out_features: int
    batch: int = 1

    def lower(self) -> List[Kernel]:
        return [
            GemmSpec(
                name=self.name,
                m=self.batch,
                k=self.in_features,
                n=self.out_features,
            )
        ]


@dataclass(frozen=True)
class PoolSpec:
    """Max/avg pooling over (h, w, c)."""

    name: str
    in_h: int
    in_w: int
    channels: int
    kernel: int
    stride: int = 0  # 0 = same as kernel
    padding: int = 0

    @property
    def eff_stride(self) -> int:
        return self.stride or self.kernel

    def _eff_kernel(self, size: int) -> int:
        # Pooling windows clamp to the input (ceil-mode behaviour), so
        # reduced-resolution profiles never collapse a window.
        return min(self.kernel, size + 2 * self.padding)

    @property
    def out_h(self) -> int:
        return _conv_out(
            self.in_h, self._eff_kernel(self.in_h), self.eff_stride, self.padding
        )

    @property
    def out_w(self) -> int:
        return _conv_out(
            self.in_w, self._eff_kernel(self.in_w), self.eff_stride, self.padding
        )

    def lower(self) -> List[Kernel]:
        out_elems = self.out_h * self.out_w * self.channels
        return [
            VectorSpec(
                name=self.name,
                elements=out_elems,
                in_bytes=self.in_h * self.in_w * self.channels,
                out_bytes=out_elems,
                ops_per_element=self.kernel * self.kernel,
            )
        ]


@dataclass(frozen=True)
class EltwiseSpec:
    """Element-wise op (residual add, softmax, layernorm...)."""

    name: str
    elements: int
    operands: int = 2
    ops_per_element: int = 1

    def lower(self) -> List[Kernel]:
        return [
            VectorSpec(
                name=self.name,
                elements=self.elements,
                in_bytes=self.elements * self.operands,
                out_bytes=self.elements,
                ops_per_element=self.ops_per_element,
            )
        ]


@dataclass(frozen=True)
class AttentionMatmulSpec:
    """Activation x activation matmul (QK^T and PV), repeated per head."""

    name: str
    m: int
    k: int
    n: int
    heads: int

    def lower(self) -> List[Kernel]:
        return [
            GemmSpec(
                name=self.name,
                m=self.m,
                k=self.k,
                n=self.n,
                repeat=self.heads,
                b_is_activation=True,
            )
        ]


LayerSpec = Union[ConvSpec, DenseSpec, PoolSpec, EltwiseSpec, AttentionMatmulSpec]


@dataclass
class ModelGraph:
    """A named, ordered list of layers plus descriptive metadata."""

    name: str
    layers: List[LayerSpec] = field(default_factory=list)
    input_shape: Sequence[int] = ()

    def add(self, layer: LayerSpec) -> LayerSpec:
        self.layers.append(layer)
        return layer

    def lower(self) -> List[Kernel]:
        kernels: List[Kernel] = []
        for layer in self.layers:
            kernels.extend(layer.lower())
        return kernels

    @property
    def total_macs(self) -> int:
        return sum(
            k.macs for k in self.lower() if isinstance(k, GemmSpec)
        )

    @property
    def total_weight_bytes(self) -> int:
        return sum(
            k.weight_bytes * k.repeat
            for k in self.lower()
            if isinstance(k, GemmSpec) and not k.b_is_activation
        )

    @property
    def cache_key(self) -> str:
        """Content-based identity (two graphs with equal names may differ)."""
        import hashlib

        digest = hashlib.sha1()
        digest.update(self.name.encode())
        for kernel in self.lower():
            digest.update(repr(kernel).encode())
        return digest.hexdigest()

    def summary(self) -> str:
        kernels = self.lower()
        gemms = sum(1 for k in kernels if isinstance(k, GemmSpec))
        return (
            f"{self.name}: {len(self.layers)} layers -> {len(kernels)} kernels "
            f"({gemms} GEMM), {self.total_macs / 1e6:.1f} MMACs, "
            f"{self.total_weight_bytes / 1e6:.2f} MB weights"
        )
