"""Tiny synthetic workloads for unit tests and micro-benchmarks.

These keep iteration counts in the tens so functional execution (real data
movement through the DMA engine and scratchpad) stays fast.
"""

from __future__ import annotations

from typing import List

from repro.workloads.model import ConvSpec, DenseSpec, ModelGraph


def synthetic_mlp(
    name: str = "mlp",
    layers: int = 3,
    features: int = 256,
    batch: int = 32,
) -> ModelGraph:
    """A small MLP: *layers* dense layers of *features* units."""
    g = ModelGraph(name, input_shape=(batch, features))
    for i in range(layers):
        g.add(DenseSpec(f"{name}_fc{i}", features, features, batch=batch))
    return g


def synthetic_cnn(
    name: str = "cnn",
    input_size: int = 32,
    channels: int = 32,
    depth: int = 3,
) -> ModelGraph:
    """A small CNN: *depth* 3x3 convolutions at constant resolution."""
    g = ModelGraph(name, input_shape=(input_size, input_size, 3))
    in_c = 3
    for i in range(depth):
        g.add(
            ConvSpec(
                f"{name}_conv{i}",
                in_h=input_size,
                in_w=input_size,
                in_c=in_c,
                out_c=channels,
                kernel=3,
                padding=1,
            )
        )
        in_c = channels
    return g
