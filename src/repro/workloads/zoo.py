"""The six DNN inference workloads of the paper's evaluation (§VI-A).

"We choose six different state-of-the-art DNN inference models including
GoogleNet, AlexNet, YOLO-lite, MobileNet, ResNet, and Bert" — CV and NLP
networks with different model sizes, kernel types and compute/memory
balance.

Every builder takes an ``input_size`` (CNNs) or ``seq_len`` (BERT) so the
benchmarks can run a reduced-resolution *eval profile* (documented in
EXPERIMENTS.md) while keeping layer structure, channel counts and
compute/memory ratios faithful.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.workloads.model import (
    AttentionMatmulSpec,
    ConvSpec,
    DenseSpec,
    EltwiseSpec,
    ModelGraph,
    PoolSpec,
)


class _ShapeTracker:
    """Propagates (h, w, c) through a CNN as layers are appended."""

    def __init__(self, graph: ModelGraph, h: int, w: int, c: int):
        self.graph = graph
        self.h, self.w, self.c = h, w, c

    def conv(
        self,
        name: str,
        out_c: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
    ) -> "_ShapeTracker":
        layer = ConvSpec(
            name=name,
            in_h=self.h,
            in_w=self.w,
            in_c=self.c,
            out_c=out_c,
            kernel=kernel,
            stride=stride,
            padding=padding,
            groups=groups,
        )
        self.graph.add(layer)
        self.h, self.w, self.c = layer.out_h, layer.out_w, out_c
        return self

    def pool(
        self, name: str, kernel: int, stride: int = 0, padding: int = 0
    ) -> "_ShapeTracker":
        layer = PoolSpec(
            name=name,
            in_h=self.h,
            in_w=self.w,
            channels=self.c,
            kernel=kernel,
            stride=stride,
            padding=padding,
        )
        self.graph.add(layer)
        self.h, self.w = layer.out_h, layer.out_w
        return self

    def global_pool(self, name: str) -> "_ShapeTracker":
        return self.pool(name, kernel=self.h, stride=self.h)

    def residual_add(self, name: str) -> "_ShapeTracker":
        self.graph.add(
            EltwiseSpec(name=name, elements=self.h * self.w * self.c, operands=2)
        )
        return self

    def dense(self, name: str, out_features: int) -> "_ShapeTracker":
        self.graph.add(
            DenseSpec(
                name=name,
                in_features=self.h * self.w * self.c,
                out_features=out_features,
            )
        )
        self.h, self.w, self.c = 1, 1, out_features
        return self


def _check_input(input_size: int) -> None:
    if input_size < 32:
        raise ConfigError(f"input_size {input_size} too small for these CNNs")


# ----------------------------------------------------------------------
# AlexNet (Krizhevsky et al., 2012)
# ----------------------------------------------------------------------
def alexnet(input_size: int = 224) -> ModelGraph:
    _check_input(input_size)
    g = ModelGraph("alexnet", input_shape=(input_size, input_size, 3))
    t = _ShapeTracker(g, input_size, input_size, 3)
    t.conv("conv1", 96, kernel=11, stride=4, padding=2)
    t.pool("pool1", 3, 2)
    t.conv("conv2", 256, kernel=5, padding=2, groups=2)
    t.pool("pool2", 3, 2)
    t.conv("conv3", 384, kernel=3, padding=1)
    t.conv("conv4", 384, kernel=3, padding=1, groups=2)
    t.conv("conv5", 256, kernel=3, padding=1, groups=2)
    t.pool("pool3", 3, 2)
    t.dense("fc6", 4096)
    t.dense("fc7", 4096)
    t.dense("fc8", 1000)
    return g


# ----------------------------------------------------------------------
# GoogLeNet (Szegedy et al., 2015)
# ----------------------------------------------------------------------
_INCEPTION_CFG = {
    # name: (1x1, 3x3reduce, 3x3, 5x5reduce, 5x5, pool_proj)
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(t: _ShapeTracker, tag: str) -> None:
    c1, r3, c3, r5, c5, pp = _INCEPTION_CFG[tag]
    h, w, c_in = t.h, t.w, t.c
    g = t.graph
    g.add(ConvSpec(f"inc{tag}_1x1", h, w, c_in, c1, kernel=1))
    g.add(ConvSpec(f"inc{tag}_3x3r", h, w, c_in, r3, kernel=1))
    g.add(ConvSpec(f"inc{tag}_3x3", h, w, r3, c3, kernel=3, padding=1))
    g.add(ConvSpec(f"inc{tag}_5x5r", h, w, c_in, r5, kernel=1))
    g.add(ConvSpec(f"inc{tag}_5x5", h, w, r5, c5, kernel=5, padding=2))
    g.add(PoolSpec(f"inc{tag}_pool", h, w, c_in, kernel=3, stride=1, padding=1))
    g.add(ConvSpec(f"inc{tag}_poolproj", h, w, c_in, pp, kernel=1))
    t.c = c1 + c3 + c5 + pp


def googlenet(input_size: int = 224) -> ModelGraph:
    _check_input(input_size)
    g = ModelGraph("googlenet", input_shape=(input_size, input_size, 3))
    t = _ShapeTracker(g, input_size, input_size, 3)
    t.conv("conv1", 64, kernel=7, stride=2, padding=3)
    t.pool("pool1", 3, 2)
    t.conv("conv2_reduce", 64, kernel=1)
    t.conv("conv2", 192, kernel=3, padding=1)
    t.pool("pool2", 3, 2)
    _inception(t, "3a")
    _inception(t, "3b")
    t.pool("pool3", 3, 2, padding=1)
    for tag in ("4a", "4b", "4c", "4d", "4e"):
        _inception(t, tag)
    t.pool("pool4", 3, 2, padding=1)
    _inception(t, "5a")
    _inception(t, "5b")
    t.global_pool("avgpool")
    t.dense("fc", 1000)
    return g


# ----------------------------------------------------------------------
# YOLO-lite (Huang et al., 2018) - the non-GPU real-time detector
# ----------------------------------------------------------------------
def yololite(input_size: int = 224) -> ModelGraph:
    _check_input(input_size)
    g = ModelGraph("yololite", input_shape=(input_size, input_size, 3))
    t = _ShapeTracker(g, input_size, input_size, 3)
    t.conv("conv1", 16, kernel=3, padding=1)
    t.pool("pool1", 2)
    t.conv("conv2", 32, kernel=3, padding=1)
    t.pool("pool2", 2)
    t.conv("conv3", 64, kernel=3, padding=1)
    t.pool("pool3", 2)
    t.conv("conv4", 128, kernel=3, padding=1)
    t.pool("pool4", 2)
    t.conv("conv5", 128, kernel=3, padding=1)
    t.pool("pool5", 2)
    t.conv("conv6", 256, kernel=3, padding=1)
    t.conv("conv7", 125, kernel=1)
    return g


# ----------------------------------------------------------------------
# MobileNet v1 (Howard et al., 2017)
# ----------------------------------------------------------------------
def mobilenet(input_size: int = 224) -> ModelGraph:
    _check_input(input_size)
    g = ModelGraph("mobilenet", input_shape=(input_size, input_size, 3))
    t = _ShapeTracker(g, input_size, input_size, 3)
    t.conv("conv1", 32, kernel=3, stride=2, padding=1)

    def dw_sep(idx: int, out_c: int, stride: int = 1) -> None:
        t.conv(f"dw{idx}", t.c, kernel=3, stride=stride, padding=1, groups=t.c)
        t.conv(f"pw{idx}", out_c, kernel=1)

    dw_sep(1, 64)
    dw_sep(2, 128, stride=2)
    dw_sep(3, 128)
    dw_sep(4, 256, stride=2)
    dw_sep(5, 256)
    dw_sep(6, 512, stride=2)
    for i in range(7, 12):
        dw_sep(i, 512)
    dw_sep(12, 1024, stride=2)
    dw_sep(13, 1024)
    t.global_pool("avgpool")
    t.dense("fc", 1000)
    return g


# ----------------------------------------------------------------------
# ResNet-18 (He et al., 2016)
# ----------------------------------------------------------------------
def resnet18(input_size: int = 224) -> ModelGraph:
    _check_input(input_size)
    g = ModelGraph("resnet", input_shape=(input_size, input_size, 3))
    t = _ShapeTracker(g, input_size, input_size, 3)
    t.conv("conv1", 64, kernel=7, stride=2, padding=3)
    t.pool("pool1", 3, 2)

    def basic_block(idx: int, out_c: int, stride: int = 1) -> None:
        downsample = stride != 1 or t.c != out_c
        in_h, in_w, in_c = t.h, t.w, t.c
        t.conv(f"res{idx}a", out_c, kernel=3, stride=stride, padding=1)
        t.conv(f"res{idx}b", out_c, kernel=3, padding=1)
        if downsample:
            g.add(
                ConvSpec(
                    f"res{idx}ds", in_h, in_w, in_c, out_c, kernel=1, stride=stride
                )
            )
        t.residual_add(f"res{idx}add")

    basic_block(1, 64)
    basic_block(2, 64)
    basic_block(3, 128, stride=2)
    basic_block(4, 128)
    basic_block(5, 256, stride=2)
    basic_block(6, 256)
    basic_block(7, 512, stride=2)
    basic_block(8, 512)
    t.global_pool("avgpool")
    t.dense("fc", 1000)
    return g


# ----------------------------------------------------------------------
# BERT-base encoder (Devlin et al., 2018)
# ----------------------------------------------------------------------
def bert(seq_len: int = 128, layers: int = 12, hidden: int = 768, heads: int = 12) -> ModelGraph:
    if hidden % heads:
        raise ConfigError(f"hidden {hidden} not divisible by heads {heads}")
    head_dim = hidden // heads
    ff = hidden * 4
    g = ModelGraph("bert", input_shape=(seq_len, hidden))
    for i in range(layers):
        g.add(DenseSpec(f"l{i}_q", hidden, hidden, batch=seq_len))
        g.add(DenseSpec(f"l{i}_k", hidden, hidden, batch=seq_len))
        g.add(DenseSpec(f"l{i}_v", hidden, hidden, batch=seq_len))
        g.add(
            AttentionMatmulSpec(
                f"l{i}_qk", m=seq_len, k=head_dim, n=seq_len, heads=heads
            )
        )
        g.add(
            EltwiseSpec(
                f"l{i}_softmax", elements=heads * seq_len * seq_len, operands=1,
                ops_per_element=4,
            )
        )
        g.add(
            AttentionMatmulSpec(
                f"l{i}_pv", m=seq_len, k=seq_len, n=head_dim, heads=heads
            )
        )
        g.add(DenseSpec(f"l{i}_proj", hidden, hidden, batch=seq_len))
        g.add(
            EltwiseSpec(
                f"l{i}_ln1", elements=seq_len * hidden, operands=2, ops_per_element=4
            )
        )
        g.add(DenseSpec(f"l{i}_ff1", hidden, ff, batch=seq_len))
        g.add(DenseSpec(f"l{i}_ff2", ff, hidden, batch=seq_len))
        g.add(
            EltwiseSpec(
                f"l{i}_ln2", elements=seq_len * hidden, operands=2, ops_per_element=4
            )
        )
    return g


# ----------------------------------------------------------------------
# Extra workloads beyond the paper's six (for users of the library)
# ----------------------------------------------------------------------
def vgg16(input_size: int = 224) -> ModelGraph:
    """VGG-16 (Simonyan & Zisserman, 2014) - the classic heavy CNN."""
    _check_input(input_size)
    g = ModelGraph("vgg16", input_shape=(input_size, input_size, 3))
    t = _ShapeTracker(g, input_size, input_size, 3)
    for block, (convs, channels) in enumerate(
        [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)], start=1
    ):
        for i in range(convs):
            t.conv(f"conv{block}_{i + 1}", channels, kernel=3, padding=1)
        t.pool(f"pool{block}", 2)
    t.dense("fc6", 4096)
    t.dense("fc7", 4096)
    t.dense("fc8", 1000)
    return g


def gpt_decoder(
    seq_len: int = 128, layers: int = 6, hidden: int = 768, heads: int = 12
) -> ModelGraph:
    """A GPT-style decoder stack (prefill phase) - attention + MLP blocks.

    Structurally a BERT encoder with causal attention; the prefill GEMMs
    are identical, which is what the simulator times.
    """
    if hidden % heads:
        raise ConfigError(f"hidden {hidden} not divisible by heads {heads}")
    head_dim = hidden // heads
    g = ModelGraph("gpt", input_shape=(seq_len, hidden))
    for i in range(layers):
        g.add(DenseSpec(f"l{i}_qkv", hidden, 3 * hidden, batch=seq_len))
        g.add(
            AttentionMatmulSpec(
                f"l{i}_qk", m=seq_len, k=head_dim, n=seq_len, heads=heads
            )
        )
        g.add(
            EltwiseSpec(
                f"l{i}_softmax", elements=heads * seq_len * seq_len,
                operands=1, ops_per_element=4,
            )
        )
        g.add(
            AttentionMatmulSpec(
                f"l{i}_pv", m=seq_len, k=seq_len, n=head_dim, heads=heads
            )
        )
        g.add(DenseSpec(f"l{i}_proj", hidden, hidden, batch=seq_len))
        g.add(DenseSpec(f"l{i}_up", hidden, 4 * hidden, batch=seq_len))
        g.add(DenseSpec(f"l{i}_down", 4 * hidden, hidden, batch=seq_len))
        g.add(
            EltwiseSpec(
                f"l{i}_ln", elements=seq_len * hidden, operands=2,
                ops_per_element=4,
            )
        )
    return g


#: name -> builder; the first six match the paper's figures.
MODEL_BUILDERS: Dict[str, Callable[..., ModelGraph]] = {
    "googlenet": googlenet,
    "alexnet": alexnet,
    "yololite": yololite,
    "mobilenet": mobilenet,
    "resnet": resnet18,
    "bert": bert,
    "vgg16": vgg16,
    "gpt": gpt_decoder,
}


def paper_models(profile: str = "eval") -> List[ModelGraph]:
    """The six evaluated models.

    ``profile="paper"`` uses full input shapes (224x224, seq 128);
    ``profile="eval"`` halves CNN resolution (112x112) and keeps BERT at
    seq 128 but 6 encoder layers, cutting simulation time ~4x with the
    same per-layer structure.
    """
    if profile == "paper":
        cnn_size, bert_kwargs = 224, {"seq_len": 128, "layers": 12}
    elif profile == "eval":
        cnn_size, bert_kwargs = 112, {"seq_len": 128, "layers": 6}
    elif profile == "tiny":
        cnn_size, bert_kwargs = 56, {"seq_len": 64, "layers": 2}
    else:
        raise ConfigError(f"unknown profile {profile!r}")
    return [
        googlenet(cnn_size),
        alexnet(cnn_size),
        yololite(cnn_size),
        mobilenet(cnn_size),
        resnet18(cnn_size),
        bert(**bert_kwargs),
    ]
