"""DNN workload descriptions: the six models of the paper's evaluation."""

from repro.workloads.model import (
    GemmSpec,
    VectorSpec,
    ConvSpec,
    DenseSpec,
    PoolSpec,
    EltwiseSpec,
    AttentionMatmulSpec,
    ModelGraph,
)
from repro.workloads.zoo import (
    alexnet,
    googlenet,
    yololite,
    mobilenet,
    resnet18,
    bert,
    vgg16,
    gpt_decoder,
    paper_models,
    MODEL_BUILDERS,
)
from repro.workloads.synthetic import synthetic_mlp, synthetic_cnn

__all__ = [
    "GemmSpec",
    "VectorSpec",
    "ConvSpec",
    "DenseSpec",
    "PoolSpec",
    "EltwiseSpec",
    "AttentionMatmulSpec",
    "ModelGraph",
    "alexnet",
    "googlenet",
    "yololite",
    "mobilenet",
    "resnet18",
    "bert",
    "vgg16",
    "gpt_decoder",
    "paper_models",
    "MODEL_BUILDERS",
    "synthetic_mlp",
    "synthetic_cnn",
]
