"""Shared L2 cache model (Table II: 2 MiB, 8 banks).

The evaluated SoC has a shared L2 between the NPU complex and DRAM; one of
the stated advantages of *integrated* NPUs is that they "can share the
system cache with a unified address space" (§II-B).  The baseline timing
calibration folds average L2 behaviour into the DRAM bandwidth, so this
explicit model is **opt-in** (pass it to the DMA engine) and exists for
the cache-sensitivity ablation: it captures short-distance reuse (weight
re-streaming, activation ping-pong) and serves hits at L2 bandwidth.

Modelled at 4 KiB-sector granularity with per-bank LRU — the same
page-sequence machinery the IOTLB uses, so detailed runs stay fast.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro import telemetry
from repro.common.types import DmaRequest, PAGE_SIZE
from repro.errors import ConfigError


class L2Cache:
    """Banked, sector-granular LRU model of the shared L2."""

    def __init__(
        self,
        size_bytes: int = 2 * 1024 * 1024,
        banks: int = 8,
        sector_bytes: int = PAGE_SIZE,
        bytes_per_cycle: float = 64.0,
    ):
        if size_bytes <= 0 or banks <= 0 or sector_bytes <= 0:
            raise ConfigError("invalid L2 geometry")
        if size_bytes % (banks * sector_bytes):
            raise ConfigError(
                f"L2 of {size_bytes} bytes does not divide into {banks} banks "
                f"of {sector_bytes}-byte sectors"
            )
        self.size_bytes = size_bytes
        self.banks = banks
        self.sector_bytes = sector_bytes
        self.bytes_per_cycle = float(bytes_per_cycle)
        self._sectors_per_bank = size_bytes // banks // sector_bytes
        self._banks: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(banks)
        ]
        self.hits = 0
        self.misses = 0
        self.bytes_hit = 0.0
        self.bytes_missed = 0.0
        tel = telemetry.metrics.group("memory.l2")
        tel.bind("hits", self, "hits")
        tel.bind("misses", self, "misses")
        tel.bind("bytes_hit", self, "bytes_hit")
        tel.bind("bytes_missed", self, "bytes_missed")
        tel.bind("hit_rate", self, "hit_rate")
        tel.bind("occupancy_sectors", self, "occupancy_sectors")

    # ------------------------------------------------------------------
    def _touch(self, sector: int) -> bool:
        """Access one sector; returns True on hit."""
        bank = self._banks[sector % self.banks]
        if sector in bank:
            bank.move_to_end(sector)
            self.hits += 1
            return True
        self.misses += 1
        if len(bank) >= self._sectors_per_bank:
            bank.popitem(last=False)
        bank[sector] = True
        return False

    def access(self, request: DmaRequest) -> Tuple[float, float]:
        """Run one DMA request through the cache.

        Returns ``(hit_bytes, miss_bytes)``.  Bytes are attributed per
        sector touched, apportioned across the request's footprint.
        """
        sectors = [
            page * PAGE_SIZE // self.sector_bytes for page in request.pages()
        ]
        if not sectors:
            return 0.0, 0.0
        per_sector = request.size / len(sectors)
        hit_bytes = 0.0
        for sector in sectors:
            if self._touch(sector):
                hit_bytes += per_sector
        miss_bytes = request.size - hit_bytes
        flows = telemetry.flows
        if flows.enabled and request.flow_id is not None:
            flows.accumulate(request.flow_id, "l2_hit_bytes", hit_bytes)
            flows.accumulate(request.flow_id, "l2_miss_bytes", miss_bytes)
        return hit_bytes, miss_bytes

    def transfer_cycles(self, hit_bytes: float) -> float:
        """Service time of the hit portion at L2 bandwidth."""
        return hit_bytes / self.bytes_per_cycle

    def invalidate(self) -> None:
        for bank in self._banks:
            bank.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy_sectors(self) -> int:
        return sum(len(bank) for bank in self._banks)
