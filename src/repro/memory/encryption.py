"""Memory encryption engine — the complementary protection of §VII.

"Current NPU TEEs also employ memory encryption to protect against
physical attacks.  All NPU's data in the DRAM is ciphertext, with the
encryption and integrity protection.  When the data is loaded into the NPU
cache or scratchpad, a memory encryption engine decrypts the data to
plaintext."  sNPU is *complementary* to this — the engine below lets the
two compose, and the ablation benchmark measures the composition's cost.

Model: counter-mode encryption per 64-byte memory block with a per-block
HMAC tag (GCM-style AR semantics).  A physical attacker dumping DRAM sees
only ciphertext; flipping ciphertext bits trips the integrity check on the
next load.  Timing: the engine pipeline adds a fixed latency per DMA
request and a small bandwidth derate for tag/counter traffic.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.types import PACKET_BYTES
from repro.errors import ConfigError, EncryptionIntegrityError
from repro.memory.dram import DRAMModel
from repro.common.crypto import mac, stream_cipher


class MemoryEncryptionEngine:
    """Counter-mode encrypt/decrypt + integrity on the DRAM path."""

    #: Extra DRAM traffic for counters + tags, as a bandwidth derate
    #: (tree-less NPU-tailored schemes like TNPU/MGX keep this small).
    DEFAULT_DERATE = 0.95

    def __init__(
        self,
        key: bytes,
        dram: DRAMModel,
        pipeline_latency: float = 12.0,
        bandwidth_derate: float = DEFAULT_DERATE,
    ):
        if not key:
            raise ConfigError("encryption engine needs a key")
        if not 0.0 < bandwidth_derate <= 1.0:
            raise ConfigError(f"derate must be in (0, 1], got {bandwidth_derate}")
        self.key = key
        self.dram = dram
        self.pipeline_latency = float(pipeline_latency)
        self.bandwidth_derate = float(bandwidth_derate)
        #: Per-block write counters (freshness) and integrity tags.
        self._counters: Dict[int, int] = {}
        self._tags: Dict[int, bytes] = {}
        self.blocks_encrypted = 0
        self.blocks_decrypted = 0
        self.integrity_failures = 0

    # ------------------------------------------------------------------
    def _blocks(self, addr: int, size: int) -> Tuple[int, int]:
        first = addr // PACKET_BYTES
        last = (addr + size - 1) // PACKET_BYTES
        return first, last

    def _nonce(self, block: int, counter: int) -> bytes:
        return block.to_bytes(8, "little") + counter.to_bytes(8, "little")

    def write(self, addr: int, data: bytes) -> None:
        """Encrypt *data* block-by-block into DRAM with fresh counters."""
        first, last = self._blocks(addr, len(data))
        if addr % PACKET_BYTES or (addr + len(data)) % PACKET_BYTES:
            # Read-modify-write of partial edge blocks.
            base = first * PACKET_BYTES
            span = (last - first + 1) * PACKET_BYTES
            merged = bytearray(self.read(base, span))
            merged[addr - base : addr - base + len(data)] = data
            addr, data = base, bytes(merged)
            first, last = self._blocks(addr, len(data))
        for block in range(first, last + 1):
            offset = (block - first) * PACKET_BYTES
            plain = data[offset : offset + PACKET_BYTES]
            counter = self._counters.get(block, 0) + 1
            self._counters[block] = counter
            cipher = stream_cipher(self.key, plain, nonce=self._nonce(block, counter))
            self.dram.write(block * PACKET_BYTES, cipher)
            self._tags[block] = mac(self.key, self._nonce(block, counter) + cipher)
            self.blocks_encrypted += 1

    def read(self, addr: int, size: int) -> bytes:
        """Decrypt + integrity-check; raises on tampered ciphertext."""
        first, last = self._blocks(addr, size)
        out = bytearray()
        for block in range(first, last + 1):
            cipher = self.dram.read(block * PACKET_BYTES, PACKET_BYTES)
            counter = self._counters.get(block, 0)
            if counter == 0:
                out += bytes(PACKET_BYTES)  # never written: zeros
                continue
            expected = self._tags.get(block)
            actual = mac(self.key, self._nonce(block, counter) + cipher)
            if expected != actual:
                self.integrity_failures += 1
                raise EncryptionIntegrityError(
                    f"memory block {block:#x} failed integrity verification "
                    f"(tampered or replayed ciphertext)"
                )
            out += stream_cipher(
                self.key, cipher, nonce=self._nonce(block, counter)
            )
            self.blocks_decrypted += 1
        start = addr - first * PACKET_BYTES
        return bytes(out[start : start + size])

    # ------------------------------------------------------------------
    def extra_cycles(self, nbytes: int) -> float:
        """Stall added to one DMA request by the engine."""
        overhead = (1.0 / self.bandwidth_derate - 1.0)
        return self.pipeline_latency + self.dram.transfer_cycles(
            nbytes * overhead
        )
