"""Contiguous chunk allocator for NPU-reserved and secure memory.

The NPU driver "needs to allocate several chunks in the NPU-reserved
memory, and the NPU will further partition each chunk into several tiles"
(§IV-A).  Android's ION heap, NVIDIA's NVMA and Qualcomm's PMEM are the
production equivalents; this is a first-fit free-list allocator over one
contiguous physical range, which is exactly what CMA-backed heaps give.

The same allocator, instantiated over the secure region, is the substrate of
the NPU Monitor's *trusted allocator*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.types import AddressRange, align_up
from repro.errors import AllocationError, ConfigError


@dataclass(frozen=True)
class Chunk:
    """One allocated contiguous physical block."""

    base: int
    size: int
    tag: str = ""

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def range(self) -> AddressRange:
        return AddressRange(self.base, self.size)


class ChunkAllocator:
    """First-fit free-list allocator over a contiguous physical range."""

    def __init__(self, range_: AddressRange, alignment: int = 64):
        if alignment <= 0 or alignment & (alignment - 1):
            raise ConfigError(f"alignment must be a power of two, got {alignment}")
        self.range = range_
        self.alignment = alignment
        # Sorted list of free (base, size) holes.
        self._free: List[List[int]] = [[range_.base, range_.size]]
        self._allocated: List[Chunk] = []

    def alloc(self, size: int, tag: str = "", alignment: Optional[int] = None) -> Chunk:
        """Allocate *size* bytes; raises :class:`AllocationError` when full."""
        if size <= 0:
            raise AllocationError(f"cannot allocate {size} bytes")
        alignment = alignment or self.alignment
        size = align_up(size, alignment)
        for hole in self._free:
            base = align_up(hole[0], alignment)
            waste = base - hole[0]
            if hole[1] - waste >= size:
                chunk = Chunk(base=base, size=size, tag=tag)
                # Shrink / split the hole.
                tail_base = base + size
                tail_size = hole[0] + hole[1] - tail_base
                if waste:
                    hole[1] = waste
                    if tail_size:
                        self._free.insert(
                            self._free.index(hole) + 1, [tail_base, tail_size]
                        )
                else:
                    if tail_size:
                        hole[0], hole[1] = tail_base, tail_size
                    else:
                        self._free.remove(hole)
                self._allocated.append(chunk)
                return chunk
        raise AllocationError(
            f"out of memory: {size} bytes requested, "
            f"{self.free_bytes} free (largest hole {self.largest_hole})"
        )

    def free(self, chunk: Chunk) -> None:
        if chunk not in self._allocated:
            raise AllocationError(f"double free or foreign chunk: {chunk}")
        self._allocated.remove(chunk)
        self._free.append([chunk.base, chunk.size])
        self._free.sort()
        # Coalesce adjacent holes.
        merged: List[List[int]] = []
        for base, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == base:
                merged[-1][1] += size
            else:
                merged.append([base, size])
        self._free = merged

    def reset(self) -> None:
        self._free = [[self.range.base, self.range.size]]
        self._allocated = []

    def owns(self, addr: int, size: int = 1) -> bool:
        """True when ``[addr, addr+size)`` lies inside one allocated chunk."""
        return any(
            c.base <= addr and addr + size <= c.end for c in self._allocated
        )

    @property
    def allocated_chunks(self) -> List[Chunk]:
        return list(self._allocated)

    @property
    def free_bytes(self) -> int:
        return sum(size for _base, size in self._free)

    @property
    def used_bytes(self) -> int:
        return self.range.size - self.free_bytes

    @property
    def largest_hole(self) -> int:
        return max((size for _base, size in self._free), default=0)

    @property
    def fragmentation(self) -> float:
        """1 - largest_hole/free_bytes; 0 when free space is one hole."""
        if self.free_bytes == 0:
            return 0.0
        return 1.0 - self.largest_hole / self.free_bytes
