"""Page tables for the IOMMU baseline.

The TrustZone-NPU baseline translates DMA packets through an IO page table
identical in structure to a CPU page table (multi-level radix tree).  The
simulator stores the table as a flat ``{virtual page -> PTE}`` dict — the
radix structure only matters for *walk cost*, which the IOMMU computes from
``levels`` and an optional page-walk cache model.

PTEs carry a world bit: the TrustZone sMMU extension stores the NS bit in
the page table ("an additional secure bit is used in the sMMU", §II-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.common.types import PAGE_SIZE, Permission, World, page_of
from repro.errors import ConfigError


@dataclass(frozen=True)
class PageTableEntry:
    """One valid leaf mapping: virtual page -> physical page."""

    ppage: int
    perm: Permission = Permission.RW
    world: World = World.NORMAL


class PageTable:
    """Flat functional model of a multi-level IO page table."""

    def __init__(self, levels: int = 3):
        if levels < 1:
            raise ConfigError(f"page table needs >= 1 level, got {levels}")
        self.levels = levels
        self._entries: Dict[int, PageTableEntry] = {}
        #: Monotonic mutation counter: bumped on every map/unmap, so a
        #: cache keyed on ``(table, version)`` stays sound across
        #: arbitrary remapping sequences.
        self.version = 0

    def map_page(
        self,
        vpage: int,
        ppage: int,
        perm: Permission = Permission.RW,
        world: World = World.NORMAL,
    ) -> None:
        self._entries[vpage] = PageTableEntry(ppage=ppage, perm=perm, world=world)
        self.version += 1

    def map_range(
        self,
        vaddr: int,
        paddr: int,
        size: int,
        perm: Permission = Permission.RW,
        world: World = World.NORMAL,
    ) -> None:
        """Map a page-aligned virtual range onto a physical range 1:1."""
        if vaddr % PAGE_SIZE or paddr % PAGE_SIZE:
            raise ConfigError(
                f"map_range requires page-aligned addresses "
                f"(vaddr={vaddr:#x}, paddr={paddr:#x})"
            )
        npages = -(-size // PAGE_SIZE)
        vbase, pbase = page_of(vaddr), page_of(paddr)
        for i in range(npages):
            self.map_page(vbase + i, pbase + i, perm=perm, world=world)

    def unmap_range(self, vaddr: int, size: int) -> None:
        vbase = page_of(vaddr)
        npages = -(-size // PAGE_SIZE)
        for i in range(npages):
            if self._entries.pop(vbase + i, None) is not None:
                self.version += 1

    def lookup(self, vpage: int) -> Optional[PageTableEntry]:
        return self._entries.get(vpage)

    def translate(self, vaddr: int) -> Optional[int]:
        """Translate one byte address; None when unmapped."""
        pte = self.lookup(page_of(vaddr))
        if pte is None:
            return None
        return pte.ppage * PAGE_SIZE + vaddr % PAGE_SIZE

    def mapped_pages(self) -> Iterable[int]:
        return self._entries.keys()

    def __len__(self) -> int:
        return len(self._entries)
