"""System memory substrate: physical map, DRAM model, page tables, allocators."""

from repro.memory.regions import Region, MemoryMap
from repro.memory.dram import DRAMModel
from repro.memory.pagetable import PageTableEntry, PageTable
from repro.memory.allocator import Chunk, ChunkAllocator
from repro.memory.encryption import MemoryEncryptionEngine

__all__ = [
    "Region",
    "MemoryMap",
    "DRAMModel",
    "PageTableEntry",
    "PageTable",
    "Chunk",
    "ChunkAllocator",
    "MemoryEncryptionEngine",
]
