"""DRAM model: functional backing store plus channel timing.

Timing follows Table II: a single channel delivering ``bandwidth_gbps`` at a
1 GHz SoC clock, i.e. ``bandwidth_gbps`` bytes per cycle, with a fixed
random-access latency charged to serialized accesses such as IOMMU page
walks.

The functional store is sparse (a dict of 4 KiB pages) so that a multi-GiB
address space costs nothing until it is touched.  Functional storage is only
exercised by security/functional tests; the performance benches run with the
DMA engine in timing-only mode.
"""

from __future__ import annotations

from typing import Dict

from repro import telemetry
from repro.common.types import PAGE_SIZE, DmaRequest
from repro.errors import ConfigError
from repro.sim.resources import BandwidthResource


class DRAMModel:
    """Sparse functional memory with a shared-bandwidth timing model."""

    def __init__(self, bytes_per_cycle: float = 16.0, access_latency: int = 40):
        if access_latency < 0:
            raise ConfigError(f"negative DRAM latency {access_latency}")
        self.channel = BandwidthResource(bytes_per_cycle)
        #: Latency in cycles of one serialized random access (page-walk step).
        self.access_latency = int(access_latency)
        self._pages: Dict[int, bytearray] = {}
        self.reads = 0
        self.writes = 0
        tel = telemetry.metrics.group("memory.dram")
        tel.bind("reads", self, "reads")
        tel.bind("writes", self, "writes")
        tel.bind("bytes_moved", self.channel, "bytes_moved")
        tel.bind("busy_cycles", self.channel, "busy_cycles")
        tel.bind("resident_bytes", self, "resident_bytes")

    # ------------------------------------------------------------------
    # Functional access
    # ------------------------------------------------------------------
    def _page(self, page_no: int) -> bytearray:
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_no] = page
        return page

    def write(self, addr: int, data: bytes) -> None:
        """Store *data* at physical address *addr* (crossing pages freely)."""
        self.writes += 1
        offset = 0
        while offset < len(data):
            cur = addr + offset
            page_no, in_page = divmod(cur, PAGE_SIZE)
            run = min(len(data) - offset, PAGE_SIZE - in_page)
            self._page(page_no)[in_page : in_page + run] = data[
                offset : offset + run
            ]
            offset += run

    def read(self, addr: int, size: int) -> bytes:
        """Load *size* bytes from physical address *addr*."""
        self.reads += 1
        out = bytearray(size)
        offset = 0
        while offset < size:
            cur = addr + offset
            page_no, in_page = divmod(cur, PAGE_SIZE)
            run = min(size - offset, PAGE_SIZE - in_page)
            page = self._pages.get(page_no)
            if page is not None:
                out[offset : offset + run] = page[in_page : in_page + run]
            offset += run
        return bytes(out)

    def zero(self, addr: int, size: int) -> None:
        """Clear ``[addr, addr+size)`` (used by flush-style mechanisms)."""
        self.write(addr, bytes(size))

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def transfer_cycles(self, nbytes: float, share: float = 1.0) -> float:
        """Streaming transfer time for *nbytes* at a bandwidth *share*."""
        return self.channel.cycles_for(nbytes, share)

    def walk_access_cycles(self) -> float:
        """Latency of one serialized page-table access."""
        return float(self.access_latency)

    def record_flow(self, request: DmaRequest, nbytes: float) -> None:
        """Annotate *request*'s flow with the bytes it moved on this channel."""
        flows = telemetry.flows
        if flows.enabled and request.flow_id is not None:
            flows.accumulate(request.flow_id, "dram_bytes", float(nbytes))

    @property
    def resident_bytes(self) -> int:
        """Bytes of functional storage actually allocated."""
        return len(self._pages) * PAGE_SIZE
