"""Physical memory map of the simulated SoC.

The map mirrors a TrustZone-style mobile SoC (§II-A, §IV-A):

* a **normal** DRAM region for the untrusted OS and applications,
* an **NPU-reserved** region (the ION/CMA-style contiguous DMA heap the
  NPU driver allocates chunks from),
* a **secure** region holding the monitor, secure-task models/data and the
  secure NPU DMA buffers (the "TrustZone secure memory area" the Guarder's
  checking register protects).

Every region carries the :class:`~repro.common.types.World` that owns it;
access controllers consult the map to decide whether a physical access from
a given world is legal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.types import AddressRange, Permission, World
from repro.errors import ConfigError

#: Default base of DRAM in the physical address space (RISC-V convention).
DRAM_BASE = 0x8000_0000

#: Default region sizes (bytes). Small enough for functional tests, large
#: enough that every workload's chunks fit.
DEFAULT_NORMAL_SIZE = 192 << 20
DEFAULT_NPU_RESERVED_SIZE = 192 << 20
DEFAULT_SECURE_SIZE = 128 << 20


@dataclass(frozen=True)
class Region:
    """A named physical region with an owning world and access permissions."""

    name: str
    range: AddressRange
    world: World
    perm: Permission = Permission.RW

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.range.contains(addr, size)


class MemoryMap:
    """Ordered collection of non-overlapping physical regions."""

    def __init__(self, regions: Optional[List[Region]] = None):
        self._regions: List[Region] = []
        for region in regions or []:
            self.add(region)

    @classmethod
    def default(
        cls,
        normal_size: int = DEFAULT_NORMAL_SIZE,
        npu_reserved_size: int = DEFAULT_NPU_RESERVED_SIZE,
        secure_size: int = DEFAULT_SECURE_SIZE,
    ) -> "MemoryMap":
        """Build the default mobile-SoC style map used by every experiment."""
        base = DRAM_BASE
        normal = Region("normal", AddressRange(base, normal_size), World.NORMAL)
        base += normal_size
        reserved = Region(
            "npu_reserved", AddressRange(base, npu_reserved_size), World.NORMAL
        )
        base += npu_reserved_size
        secure = Region("secure", AddressRange(base, secure_size), World.SECURE)
        return cls([normal, reserved, secure])

    def add(self, region: Region) -> None:
        for existing in self._regions:
            if existing.range.overlaps(region.range):
                raise ConfigError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
            if existing.name == region.name:
                raise ConfigError(f"duplicate region name {region.name!r}")
        self._regions.append(region)

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    def region(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise ConfigError(f"no region named {name!r}")

    def region_of(self, addr: int, size: int = 1) -> Optional[Region]:
        """Region fully containing ``[addr, addr+size)`` or None."""
        for region in self._regions:
            if region.contains(addr, size):
                return region
        return None

    def world_of(self, addr: int, size: int = 1) -> Optional[World]:
        region = self.region_of(addr, size)
        return region.world if region else None

    def secure_ranges(self) -> List[AddressRange]:
        """Physical ranges that belong to the secure world."""
        return [r.range for r in self._regions if r.world is World.SECURE]

    @property
    def total_size(self) -> int:
        return sum(r.range.size for r in self._regions)
