"""TrustZone sMMU: the industry's coarse-grained NPU TEE baseline (§II-D).

A smartphone vendor "extends the sMMU of the NPU with the TrustZone
extension: an additional secure bit is used in the sMMU to indicate whether
the corresponding NPU is a secure device or not".  Consequences modelled
here:

* the whole NPU is either a secure device or a normal device
  (``device_world``) — there is no per-task granularity,
* switching worlds requires an IOTLB shootdown and clearing all sensitive
  NPU context (the scheduler charges the scratchpad save/clear cost),
* a normal-world device faults on secure PTEs, a secure device may touch
  both worlds.
"""

from __future__ import annotations

from dataclasses import replace

from repro import telemetry
from repro.common.types import DmaRequest, World
from repro.errors import AccessViolation
from repro.memory.pagetable import PageTable
from repro.mmu.base import TranslationOutcome
from repro.mmu.iommu import IOMMU


class TrustZoneSMMU(IOMMU):
    """IOMMU whose effective world is a single device-level NS bit."""

    def __init__(
        self,
        page_table: PageTable,
        iotlb_entries: int = 16,
        walk_cycles: float = IOMMU.DEFAULT_WALK_CYCLES,
    ):
        super().__init__(
            page_table,
            iotlb_entries=iotlb_entries,
            walk_cycles=walk_cycles,
            enforce_world=True,
        )
        self.device_world = World.NORMAL
        self.world_switches = 0
        self.name = f"tz-smmu-{iotlb_entries}"
        telemetry.metrics.group("mmu.smmu").bind(
            "world_switches", self, "world_switches"
        )

    def switch_world(self, world: World) -> None:
        """Flip the device NS bit.

        The TrustZone NPU design requires "clearing all sensitive NPU
        context during mode switching"; the sMMU's share of that is a full
        IOTLB shootdown.  Scratchpad clearing is charged by the scheduler,
        which owns the scratchpad.
        """
        if world is not self.device_world:
            self.world_switches += 1
            telemetry.profiler.count("smmu.world_switches")
            self.invalidate_iotlb()
            audit = telemetry.audit
            if audit.enabled:
                audit.record(
                    "smmu.world_switch", "allow",
                    world=world.name, from_world=self.device_world.name,
                )
            self.device_world = world
            tracer = telemetry.tracer
            if tracer.enabled:
                tracer.instant(
                    "smmu.world_switch", "world_switch", track="iommu",
                    to=world.name,
                )

    def handle(self, request: DmaRequest) -> TranslationOutcome:
        # The device has a single identity: a request "from a secure task"
        # on a normal-world device is impossible by construction, and a
        # normal task cannot run while the device is secure.  The effective
        # initiator world is the device's.
        if request.world is World.SECURE and self.device_world is World.NORMAL:
            self.stats.violations += 1
            self._audit_deny(request, "device_world", request.vaddr // 4096)
            raise AccessViolation(
                "TrustZone sMMU: secure task offloaded while the NPU is a "
                "normal-world device"
            )
        effective = replace(request, world=self.device_world)
        return super().handle(effective)
