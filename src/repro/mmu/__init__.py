"""Memory access controllers sitting in front of the NPU's DMA engine.

Three mechanisms share the :class:`~repro.mmu.base.AccessController`
interface:

* :class:`~repro.mmu.base.NoProtection` — the unprotected *Normal NPU*
  baseline,
* :class:`~repro.mmu.iommu.IOMMU` / :class:`~repro.mmu.smmu.TrustZoneSMMU` —
  the per-packet paging baseline used by the *TrustZone NPU*,
* :class:`~repro.mmu.guarder.NPUGuarder` — the paper's tile-based
  translation/checking register design (§IV-A).
"""

from repro.mmu.base import AccessController, NoProtection, TranslationOutcome
from repro.mmu.iommu import IOMMU, IOTLB
from repro.mmu.smmu import TrustZoneSMMU
from repro.mmu.guarder import (
    CheckingRegister,
    TranslationRegister,
    NPUGuarder,
)

__all__ = [
    "AccessController",
    "NoProtection",
    "TranslationOutcome",
    "IOMMU",
    "IOTLB",
    "TrustZoneSMMU",
    "CheckingRegister",
    "TranslationRegister",
    "NPUGuarder",
]
