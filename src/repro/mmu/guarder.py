"""NPU Guarder: tile-based translation and checking registers (§IV-A, §V).

The Guarder replaces per-packet paging with two small register files placed
*inside* the NPU core, before the DMA engine:

* **checking registers** — each records a contiguous *physical* region, its
  access authority (R/W) and the world allowed to touch it.  They encode
  the platform memory map (normal DRAM / NPU-reserved heap / secure region)
  and are rarely rewritten; only the secure controller (the NPU Monitor via
  a secure instruction) may program them.
* **translation registers** — each maps one virtual tile/chunk range onto a
  physical range.  They may be updated before each NPU calculation.  The
  untrusted driver programs them for non-secure tasks; the Monitor's
  context setter programs them for secure tasks.

A DMA request is translated and checked **once per request** (not per
64-byte packet), which is why the Guarder adds zero stall cycles and needs
~5 % of the IOMMU's lookup count (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import telemetry
from repro.common.types import AddressRange, DmaRequest, Permission, World
from repro.errors import (
    AccessViolation,
    ConfigError,
    PrivilegeError,
    TranslationFault,
)
from repro.mmu.base import AccessController, TranslationOutcome


@dataclass
class CheckingRegister:
    """One coarse-grained physical-region authority record."""

    range: AddressRange
    perm: Permission
    world: World
    valid: bool = True

    def covers(self, addr: int, size: int) -> bool:
        return self.valid and self.range.contains(addr, size)

    def allows(self, need: Permission, world: World) -> bool:
        if not self.perm.allows(need):
            return False
        if self.world is World.SECURE and world is not World.SECURE:
            return False
        return True


@dataclass
class TranslationRegister:
    """One fine-grained VA range -> PA range mapping (tile level)."""

    vbase: int
    pbase: int
    size: int
    valid: bool = True

    def covers(self, vaddr: int, size: int) -> bool:
        return self.valid and self.vbase <= vaddr and vaddr + size <= self.vbase + self.size

    def translate(self, vaddr: int) -> int:
        return self.pbase + (vaddr - self.vbase)


class NPUGuarder(AccessController):
    """Register-based, request-granular DMA translation and checking.

    Parameters
    ----------
    num_checking:
        Checking-register file size (platform regions; 8 is generous).
    num_translation:
        Translation-register file size (concurrent tile mappings).
    """

    name = "guarder"

    def __init__(self, num_checking: int = 8, num_translation: int = 16):
        super().__init__()
        if num_checking < 1 or num_translation < 1:
            raise ConfigError("Guarder needs at least one register of each kind")
        self.checking: List[Optional[CheckingRegister]] = [None] * num_checking
        self.translation: List[Optional[TranslationRegister]] = [None] * num_translation
        #: Register reprogramming events (energy accounting; cheap but nonzero).
        self.checking_writes = 0
        self.translation_writes = 0
        tel = telemetry.metrics.group("mmu.guarder")
        tel.bind("translations", self.stats, "translations")
        tel.bind("checks", self.stats, "checks")
        tel.bind("denials", self.stats, "violations")
        tel.bind("checking_writes", self, "checking_writes")
        tel.bind("translation_writes", self, "translation_writes")

    # ------------------------------------------------------------------
    # Configuration (the secure controller / driver programs these)
    # ------------------------------------------------------------------
    def set_checking_register(
        self,
        index: int,
        range_: AddressRange,
        perm: Permission,
        world: World,
        issuer: World = World.NORMAL,
    ) -> None:
        """Program a checking register — a secure instruction.

        "the secure context (e.g., ID states and checking registers) can
        only be set by the secure CPU" (§IV-C); the untrusted driver
        attempting it faults.
        """
        if issuer is not World.SECURE:
            audit = telemetry.audit
            if audit.enabled:
                audit.record(
                    "privilege.deny", "deny", world=issuer.name,
                    op="guarder.set_checking_register", index=index,
                )
            raise PrivilegeError(
                "checking registers can only be programmed by the secure world"
            )
        self._check_index(index, self.checking, "checking")
        self.checking[index] = CheckingRegister(range=range_, perm=perm, world=world)
        self.checking_writes += 1
        audit = telemetry.audit
        if audit.enabled:
            audit.record(
                "guarder.program", "allow", world=issuer.name,
                register="checking", index=index, region_world=world.name,
                base=range_.base, size=range_.size,
            )
        tracer = telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "guarder.program_checking", "guarder", track="guarder",
                index=index, world=world.name,
            )

    def clear_checking_register(self, index: int, issuer: World = World.NORMAL) -> None:
        if issuer is not World.SECURE:
            raise PrivilegeError(
                "checking registers can only be cleared by the secure world"
            )
        self._check_index(index, self.checking, "checking")
        self.checking[index] = None

    def set_translation_register(
        self, index: int, vbase: int, pbase: int, size: int
    ) -> None:
        self._check_index(index, self.translation, "translation")
        if size <= 0:
            raise ConfigError(f"translation register size must be positive, got {size}")
        self.translation[index] = TranslationRegister(vbase=vbase, pbase=pbase, size=size)
        self.translation_writes += 1
        audit = telemetry.audit
        if audit.enabled:
            audit.record(
                "guarder.program", "allow",
                register="translation", index=index, size=size,
            )
        tracer = telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "guarder.program_translation", "guarder", track="guarder",
                index=index, size=size,
            )

    def clear_translation_register(self, index: int) -> None:
        self._check_index(index, self.translation, "translation")
        self.translation[index] = None

    def clear_all_translations(self) -> None:
        self.translation = [None] * len(self.translation)

    @staticmethod
    def _check_index(index: int, file_: list, kind: str) -> None:
        if not 0 <= index < len(file_):
            raise ConfigError(
                f"{kind} register index {index} out of range 0..{len(file_) - 1}"
            )

    # ------------------------------------------------------------------
    # The datapath
    # ------------------------------------------------------------------
    def _find_translation(
        self, vaddr: int, size: int, request: DmaRequest
    ) -> TranslationRegister:
        for reg in self.translation:
            if reg is not None and reg.covers(vaddr, size):
                return reg
        self.stats.violations += 1
        self._trace_denial("translation_miss", vaddr, request)
        raise TranslationFault(
            f"Guarder: no translation register covers "
            f"[{vaddr:#x}, {vaddr + size:#x})"
        )

    def _trace_denial(self, reason: str, addr: int, request: DmaRequest) -> None:
        audit = telemetry.audit
        if audit.enabled:
            audit.record(
                "guarder.deny", "deny", world=request.world.name,
                flow=request.flow_id, reason=reason, addr=addr,
                stream=request.stream,
            )
        tracer = telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "guarder.denial", "guarder", track="guarder",
                reason=reason, addr=hex(addr),
            )

    def _check_physical(self, paddr: int, size: int, request: DmaRequest) -> None:
        need = self.required_permission(request)
        for reg in self.checking:
            if reg is not None and reg.covers(paddr, size):
                if reg.allows(need, request.world):
                    return
                self.stats.violations += 1
                self._trace_denial("permission", paddr, request)
                raise AccessViolation(
                    f"Guarder: checking register denies {need!r} by "
                    f"{request.world.name} at [{paddr:#x}, {paddr + size:#x}) "
                    f"(region world {reg.world.name}, perm {reg.perm!r})"
                )
        # Default deny: a physical range no register covers is unreachable.
        self.stats.violations += 1
        self._trace_denial("uncovered", paddr, request)
        raise AccessViolation(
            f"Guarder: no checking register covers [{paddr:#x}, {paddr + size:#x})"
        )

    def handle(self, request: DmaRequest) -> TranslationOutcome:
        # One translation + one check per architectural DMA descriptor —
        # request-granular instead of packet-granular (Fig. 13(b)).
        self.stats.translations += request.sub_requests
        self.stats.checks += request.sub_requests
        telemetry.profiler.count("guarder.checks", request.sub_requests)

        # The request's virtual footprint (including strided rows) must lie
        # inside one translation register, which maps a whole tile/chunk.
        if request.rows > 1:
            span = (request.rows - 1) * request.row_stride + request.row_bytes
        else:
            span = request.size
        reg = self._find_translation(request.vaddr, span, request)
        pbase = reg.translate(request.vaddr)
        self._check_physical(pbase, span, request)
        audit = telemetry.audit
        if audit.enabled and audit.verbose:
            audit.record(
                "guarder.check", "allow", world=request.world.name,
                flow=request.flow_id, stream=request.stream,
                vaddr=request.vaddr, size=request.size,
            )

        runs = [
            (reg.translate(vaddr), size) for vaddr, size in request.row_ranges()
        ]
        return TranslationOutcome(runs=runs, extra_cycles=0.0)
