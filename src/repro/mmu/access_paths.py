"""The Fig. 2 taxonomy: Type-2 (MMU-based) and Type-3 (CPU-coupled) NPUs.

§IV-A: "Figure 2 illustrates different types of integrated NPUs, including
IOMMU-based NPUs, MMU-based NPUs, and CPU-coupled NPUs.  The first two
types ... are MMIO devices, with one utilizing DMA for system memory
access and the other employing ld/st instructions.  The third type is
coupled with the CPU core, allowing it to access the CPU cache...  There
is no unified memory access controller for integrated NPUs, which
increases design complexity."

Type-1 (IOMMU + integrated DMA) is :class:`repro.mmu.iommu.IOMMU`.  This
module models the other two, so the access-path comparison experiment can
quantify the taxonomy:

* **Type-2, MMU-based** — a *system* DMA engine first stages data into an
  NPU-visible buffer (one extra pass over the DRAM channel), then the NPU
  reads it with ld/st through a device MMU (TLB identical in kind to the
  IOTLB).
* **Type-3, CPU-coupled** (e.g. Gemmini's RoCC baseline) — accesses ride
  the CPU's translation machinery: a larger L1-style TLB and cheap walks
  (the CPU's PTW + caches), but every NPU access occupies the CPU-side
  port, charged as a per-request assist overhead.
"""

from __future__ import annotations

from repro.common.types import DmaRequest
from repro.errors import ConfigError
from repro.memory.pagetable import PageTable
from repro.mmu.base import TranslationOutcome
from repro.mmu.iommu import IOMMU


class Type2MMU(IOMMU):
    """MMU-based NPU: staged system-DMA copies + device-MMU ld/st."""

    #: The staging copy moves the data once more over the DRAM channel.
    STAGING_PASSES = 1.0
    #: Driver overhead to program the system DMA engine per request.
    STAGING_SETUP_CYCLES = 24.0

    def __init__(
        self,
        page_table: PageTable,
        mmu_tlb_entries: int = 16,
        dram_bytes_per_cycle: float = 16.0,
        **kwargs,
    ):
        super().__init__(page_table, iotlb_entries=mmu_tlb_entries, **kwargs)
        if dram_bytes_per_cycle <= 0:
            raise ConfigError("dram_bytes_per_cycle must be positive")
        self.dram_bytes_per_cycle = float(dram_bytes_per_cycle)
        self.name = f"type2-mmu-{mmu_tlb_entries}"
        self.staged_bytes = 0.0

    def handle(self, request: DmaRequest) -> TranslationOutcome:
        outcome = super().handle(request)
        # The staging copy serializes before the NPU's own access.
        staging = (
            self.STAGING_SETUP_CYCLES
            + self.STAGING_PASSES * request.size / self.dram_bytes_per_cycle
        )
        self.staged_bytes += request.size
        return TranslationOutcome(
            runs=outcome.runs,
            extra_cycles=outcome.extra_cycles + staging,
        )


class Type3CpuCoupled(IOMMU):
    """CPU-coupled NPU: translation via the CPU's TLB/PTW.

    The CPU's L1 TLB is big and its walks are cheap (cached page tables),
    but each NPU request steals a CPU memory-port slot.
    """

    #: CPU-assisted walk: PTW hitting the cache hierarchy.
    CPU_WALK_CYCLES = 24.0
    #: CPU port occupancy per architectural descriptor.
    CPU_ASSIST_CYCLES = 6.0

    def __init__(
        self,
        page_table: PageTable,
        tlb_entries: int = 64,
        **kwargs,
    ):
        kwargs.setdefault("walk_cycles", self.CPU_WALK_CYCLES)
        super().__init__(page_table, iotlb_entries=tlb_entries, **kwargs)
        self.name = f"type3-cpu-{tlb_entries}"

    def handle(self, request: DmaRequest) -> TranslationOutcome:
        outcome = super().handle(request)
        assist = self.CPU_ASSIST_CYCLES * request.sub_requests
        return TranslationOutcome(
            runs=outcome.runs,
            extra_cycles=outcome.extra_cycles + assist,
        )
