"""IOMMU with IOTLB: the paging-based access-control baseline.

This models the sMMU/IOMMU in front of a Type-1 integrated NPU (Fig. 2):

* every 64-byte memory packet performs an IOTLB lookup and a permission
  check (the per-packet cost Fig. 13(b) counts),
* an IOTLB miss triggers a multi-level IO page-table walk whose serialized
  DRAM accesses stall the DMA stream (the 10–20 % loss of Fig. 13(a)),
* the NS bit stored in the PTE implements the TrustZone extension
  (see :mod:`repro.mmu.smmu`).

The IOTLB is a true LRU cache over page numbers, simulated against the
exact page-touch sequence the tiling compiler generates, so the ping-pong
behaviour between the input/weight/output streams with few entries is
emergent, not scripted.  Consecutive packets to the same page are folded
into one lookup for miss simulation (they can never miss), keeping the
simulation fast while the per-packet *counters* stay exact.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro import telemetry
from repro.common.types import (
    DmaRequest,
    PAGE_SIZE,
    Permission,
    World,
    page_of,
    pages_of_range,
)
from repro.errors import AccessViolation, ConfigError, TranslationFault
from repro.memory.pagetable import PageTable, PageTableEntry
from repro.mmu.base import AccessController, TranslationOutcome


class IOTLB:
    """Fully associative LRU translation cache keyed by virtual page."""

    def __init__(self, entries: int):
        if entries < 1:
            raise ConfigError(f"IOTLB needs >= 1 entry, got {entries}")
        self.entries = entries
        self._cache: "OrderedDict[int, PageTableEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vpage: int) -> Optional[PageTableEntry]:
        pte = self._cache.get(vpage)
        if pte is not None:
            self._cache.move_to_end(vpage)
            self.hits += 1
        else:
            self.misses += 1
        return pte

    def insert(self, vpage: int, pte: PageTableEntry) -> None:
        if vpage in self._cache:
            self._cache.move_to_end(vpage)
            self._cache[vpage] = pte
            return
        if len(self._cache) >= self.entries:
            self._cache.popitem(last=False)
        self._cache[vpage] = pte

    def invalidate(self, vpage: Optional[int] = None) -> None:
        """Flush one page or (with None) the entire IOTLB."""
        if vpage is None:
            self._cache.clear()
        else:
            self._cache.pop(vpage, None)

    @property
    def occupancy(self) -> int:
        return len(self._cache)


class IOMMU(AccessController):
    """Per-packet translating IOMMU with an LRU IOTLB.

    Parameters
    ----------
    page_table:
        The IO page table the walker descends on a miss.
    iotlb_entries:
        Number of IOTLB entries ("IOTLB-4" ... "IOTLB-32" in Fig. 13).
    walk_cycles:
        Stall cycles of one page walk.  Defaults to two serialized DRAM
        accesses (upper levels hit the page-walk cache).
    enforce_world:
        When True the PTE's NS bit is checked against the request world.
    functional:
        Build exact physical runs for functional data movement (slower;
        only the security/functional tests need it).
    """

    #: Default page-walk stall: a 3-level IO page table whose upper levels
    #: hit the walker's page-walk cache - about one serialized DRAM access
    #: plus walker overhead.
    DEFAULT_WALK_CYCLES = 48.0
    #: Fraction of a walk exposed when the missed page continues a
    #: sequential stream: the walker overlaps the next-page walk with the
    #: current page's ~256-cycle transfer, hiding about half of it (one
    #: outstanding walk, issued after the stream crosses the boundary).
    SEQUENTIAL_OVERLAP = 0.5

    def __init__(
        self,
        page_table: PageTable,
        iotlb_entries: int = 16,
        walk_cycles: float = DEFAULT_WALK_CYCLES,
        enforce_world: bool = True,
        functional: bool = False,
    ):
        super().__init__()
        self.page_table = page_table
        self.iotlb = IOTLB(iotlb_entries)
        self.walk_cycles = float(walk_cycles)
        self.enforce_world = enforce_world
        self.functional = functional
        self.name = f"iommu-{iotlb_entries}"
        self._pending_walk_cycles = 0.0
        self._last_vpage = -2
        tel = telemetry.metrics.group("mmu.iommu")
        tel.bind("translations", self.stats, "translations")
        tel.bind("checks", self.stats, "checks")
        tel.bind("page_walks", self.stats, "page_walks")
        tel.bind("walk_cycles", self.stats, "walk_cycles")
        tel.bind("violations", self.stats, "violations")
        tel.bind("iotlb_hits", self.iotlb, "hits")
        tel.bind("iotlb_misses", self.iotlb, "misses")
        tel.bind("iotlb_occupancy", self.iotlb, "occupancy")
        #: Walk cursor: cumulative stall cycles, the walk spans' timebase.
        self._walk_cursor = 0.0

    # ------------------------------------------------------------------
    def _world_allows(self, pte_world: World, request_world: World) -> bool:
        # TrustZone rule: secure initiators may touch both worlds; normal
        # initiators may only touch normal pages.
        return not (pte_world is World.SECURE and request_world is not World.SECURE)

    def _translate_page(self, vpage: int, request: DmaRequest) -> PageTableEntry:
        """IOTLB lookup + walk-on-miss for one page; charges stall cycles."""
        pte = self.iotlb.lookup(vpage)
        if pte is None:
            self.stats.misses += 1
            self.stats.page_walks += 1
            stall = self.walk_cycles
            if vpage == self._last_vpage + 1:
                stall *= self.SEQUENTIAL_OVERLAP
            self.stats.walk_cycles += stall
            self._pending_walk_cycles += stall
            telemetry.profiler.count("iotlb.walks")
            flows = telemetry.flows
            if flows.enabled and request.flow_id is not None:
                flows.accumulate(request.flow_id, "iotlb_walks", 1)
                flows.accumulate(request.flow_id, "walk_cycles", stall)
            tracer = telemetry.tracer
            if tracer.enabled:
                tracer.span(
                    "iotlb.walk", "iotlb", ts=self._walk_cursor, dur=stall,
                    track="iommu", vpage=vpage,
                )
            self._walk_cursor += stall
            pte = self.page_table.lookup(vpage)
            if pte is None:
                self.stats.violations += 1
                self._audit_deny(request, "unmapped", vpage)
                raise TranslationFault(
                    f"IOMMU: no mapping for vpage {vpage:#x} "
                    f"({request.stream} {'write' if request.is_write else 'read'})"
                )
            self.iotlb.insert(vpage, pte)
        return pte

    def _audit_deny(self, request: DmaRequest, reason: str, vpage: int) -> None:
        audit = telemetry.audit
        if audit.enabled:
            audit.record(
                "iommu.deny", "deny", world=request.world.name,
                flow=request.flow_id, reason=reason, vpage=vpage,
                stream=request.stream, controller=self.name,
            )

    def _check_pte(self, pte: PageTableEntry, request: DmaRequest, vpage: int) -> None:
        need = self.required_permission(request)
        if not pte.perm.allows(need):
            self.stats.violations += 1
            self._audit_deny(request, "permission", vpage)
            raise AccessViolation(
                f"IOMMU: permission {pte.perm!r} denies {need!r} on vpage {vpage:#x}"
            )
        if self.enforce_world and not self._world_allows(pte.world, request.world):
            self.stats.violations += 1
            self._audit_deny(request, "world", vpage)
            raise AccessViolation(
                f"IOMMU: world {request.world.name} cannot access "
                f"{pte.world.name} vpage {vpage:#x}"
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _page_sequence(request: DmaRequest) -> List[int]:
        """Deduplicated page-touch order of the request's packets.

        Folding immediately repeated pages is exact for LRU miss counting:
        a page cannot be evicted between two back-to-back packets.
        """
        if request.rows <= 1:
            return pages_of_range(request.vaddr, request.size)
        if request.row_stride < PAGE_SIZE:
            span = (request.rows - 1) * request.row_stride + request.row_bytes
            return pages_of_range(request.vaddr, span)
        # Widely strided rows: each row touches its own page(s).
        seq: List[int] = []
        last = -1
        for base, size in request.row_ranges():
            for page in pages_of_range(base, size):
                if page != last:
                    seq.append(page)
                    last = page
        return seq

    def _precise_runs(self, request: DmaRequest) -> List[tuple]:
        """Exact physical runs for functional copies (no stat side effects)."""
        runs: List[tuple] = []
        for base, size in request.row_ranges():
            offset = 0
            while offset < size:
                cur = base + offset
                vpage = page_of(cur)
                pte = self.page_table.lookup(vpage)
                if pte is None:
                    raise TranslationFault(
                        f"IOMMU: no mapping for vpage {vpage:#x}"
                    )
                in_page = cur % PAGE_SIZE
                run = min(size - offset, PAGE_SIZE - in_page)
                paddr = pte.ppage * PAGE_SIZE + in_page
                if runs and runs[-1][0] + runs[-1][1] == paddr:
                    runs[-1] = (runs[-1][0], runs[-1][1] + run)
                else:
                    runs.append((paddr, run))
                offset += run
        return runs

    def handle(self, request: DmaRequest) -> TranslationOutcome:
        # Per-packet bookkeeping: every 64 B packet performs one IOTLB
        # lookup and one permission check (Fig. 13(b) counts these).
        npackets = request.num_packets
        self.stats.translations += npackets
        self.stats.checks += npackets

        self._pending_walk_cycles = 0.0
        first_pte: Optional[PageTableEntry] = None
        for vpage in self._page_sequence(request):
            pte = self._translate_page(vpage, request)
            self._last_vpage = vpage
            self._check_pte(pte, request, vpage)
            if first_pte is None:
                first_pte = pte
        if first_pte is None:  # pragma: no cover - size>0 is enforced upstream
            raise TranslationFault("IOMMU: empty request")

        if self.functional:
            runs = self._precise_runs(request)
        else:
            paddr = first_pte.ppage * PAGE_SIZE + request.vaddr % PAGE_SIZE
            runs = [(paddr, request.size)]
        return TranslationOutcome(runs=runs, extra_cycles=self._pending_walk_cycles)

    def reset_stats(self) -> None:
        super().reset_stats()
        self._pending_walk_cycles = 0.0
        self.iotlb.hits = 0
        self.iotlb.misses = 0

    def invalidate_iotlb(self) -> None:
        """Full IOTLB shootdown (context switch / world switch)."""
        self.iotlb.invalidate()
        telemetry.profiler.count("iotlb.shootdowns")
        tracer = telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "iotlb.shootdown", "iotlb", ts=self._walk_cursor, track="iommu"
            )
