"""Common interface of every DMA access-control mechanism.

An :class:`AccessController` receives whole DMA requests from the DMA
engine, translates their virtual addresses, performs permission/world
checks, and reports how many extra stall cycles the mechanism added (page
walks for the IOMMU; zero for the Guarder).  Security failures raise
:class:`~repro.errors.AccessViolation` or
:class:`~repro.errors.TranslationFault` — they never silently pass.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common.types import CheckStats, DmaRequest, Permission, World


@dataclass
class TranslationOutcome:
    """Result of pushing one DMA request through an access controller.

    Attributes
    ----------
    runs:
        Physical ``(paddr, size)`` runs of the request, in transfer order.
        Functional mode copies data along these runs.
    extra_cycles:
        Stall cycles charged to the DMA transfer by the mechanism itself
        (IOTLB miss page walks).  Zero for register-based checking.
    """

    runs: List[Tuple[int, int]]
    extra_cycles: float = 0.0

    @property
    def paddr(self) -> int:
        return self.runs[0][0] if self.runs else 0

    @property
    def total_bytes(self) -> int:
        return sum(size for _addr, size in self.runs)


class AccessController(abc.ABC):
    """Translates and permission-checks DMA requests for the NPU."""

    #: Short mechanism name used in reports ("iommu-8", "guarder", ...).
    name: str = "base"

    #: Per-check latency attributed to the mechanism itself by the cycle
    #: profiler.  Zero for every shipped controller — register-file checks
    #: (Guarder) are combinational and walk stalls are charged through
    #: ``TranslationOutcome.extra_cycles`` — but the constant makes the
    #: "Guarder check latency" row of the decomposition explicit.
    CHECK_CYCLES: float = 0.0

    def __init__(self) -> None:
        self.stats = CheckStats()

    @abc.abstractmethod
    def handle(self, request: DmaRequest) -> TranslationOutcome:
        """Translate + check one DMA request.

        Raises
        ------
        TranslationFault
            If any byte of the request is unmapped.
        AccessViolation
            If the request's world/permissions do not allow the access.
        """

    def reset_stats(self) -> None:
        self.stats.reset()

    def required_permission(self, request: DmaRequest) -> Permission:
        return Permission.WRITE if request.is_write else Permission.READ


class NoProtection(AccessController):
    """Identity translation with no checking — the Normal NPU baseline.

    Virtual addresses are treated as physical (the driver programs DMA with
    physical addresses, as unprotected integrated NPUs do).  Every access is
    allowed, including reads of the secure region: the attack tests rely on
    this controller being genuinely unsafe.
    """

    name = "none"

    def handle(self, request: DmaRequest) -> TranslationOutcome:
        runs = list(request.row_ranges())
        return TranslationOutcome(runs=runs, extra_cycles=0.0)
