"""Executable attack scenarios from the paper's threat model."""

from repro.security.attacks import (
    AttackResult,
    attack_dma_steal_secure_memory,
    attack_leftoverlocals,
    attack_global_spad_cotenant,
    attack_noc_route_hijack,
    attack_driver_sets_secure_context,
    attack_tampered_task_code,
    attack_wrong_topology,
    attack_cold_boot_dram_dump,
    run_all_attacks,
    ALL_ATTACKS,
)

__all__ = [
    "AttackResult",
    "attack_dma_steal_secure_memory",
    "attack_leftoverlocals",
    "attack_global_spad_cotenant",
    "attack_noc_route_hijack",
    "attack_driver_sets_secure_context",
    "attack_tampered_task_code",
    "attack_wrong_topology",
    "attack_cold_boot_dram_dump",
    "run_all_attacks",
    "ALL_ATTACKS",
]
