"""Executable attacks from the paper's threat model (§I, §III-B, §IV).

Every attack is a function taking ``protection`` ("none" for the
vulnerable Normal NPU, "snpu" for the defended system) and returning an
:class:`AttackResult` that records whether the secret actually leaked /
the malicious action actually happened.  The security test suite asserts
*succeeded* on the baseline and *blocked with the right exception* on
sNPU — so a mechanism cannot pass by failing for an unrelated reason.

Covered attack surfaces:

1. a compromised NPU reading CPU-side secure memory via DMA (§I attack 1),
2. LeftoverLocals: scratchpad residue theft on the exclusive scratchpad,
3. spatial co-tenant theft on the shared/global scratchpad,
4. NoC route hijack: a normal-world core receiving a secure stream (§IV-B),
5. the untrusted driver programming secure context (§IV-C),
6. tampered task code caught by measurement,
7. wrong NoC topology caught by the secure loader's route-integrity check.

Each attack runs under a fresh telemetry scope with the **audit ledger**
enabled and carries the scope's records out in
``AttackResult.audit_records``; :func:`assert_expected_audit` corroborates
a blocked verdict against the ledger (right denial kind, right world,
flow ID present where the denial judged a tracked request).  The physical
cold-boot attack has no audit expectation — it reads DRAM below every
access-control check, which is precisely its point.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.telemetry.sentinel import SecuritySentinel
from repro.common.types import AddressRange, DmaRequest, Permission, World
from repro.errors import (
    AccessViolation,
    MeasurementError,
    NoCAuthError,
    PrivilegeError,
    RouteIntegrityError,
    ScratchpadIsolationError,
    SecurityViolation,
)
from repro.memory.dram import DRAMModel
from repro.memory.regions import MemoryMap
from repro.mmu.base import NoProtection
from repro.mmu.guarder import NPUGuarder
from repro.monitor.context_setter import install_platform_checking
from repro.monitor.monitor import NPUMonitor
from repro.noc.mesh import Mesh
from repro.noc.router import NoCFabric, NoCPolicy
from repro.npu.config import NPUConfig
from repro.npu.core import NPUCore
from repro.npu.dma import DMAEngine
from repro.npu.isa import SpadTransfer
from repro.npu.scratchpad import Scratchpad, SpadIsolationMode
from repro.workloads.synthetic import synthetic_mlp

SECRET = b"TOP-SECRET-MODEL-WEIGHTS-0123456789abcdef"


@dataclass
class AttackResult:
    """Outcome of one attack attempt."""

    name: str
    protection: str
    succeeded: bool
    blocked_by: Optional[str] = None
    detail: str = ""
    #: Audit-ledger records produced while the attack ran (the blocked
    #: verdict's corroborating evidence; see :func:`assert_expected_audit`).
    audit_records: List[Dict[str, Any]] = field(default_factory=list)
    #: Streaming-sentinel verdict (:meth:`DetectionReport.to_dict`):
    #: first-probe cycle, first-flag cycle, detection latency and the
    #: flags raised *while the attack ran*.  None when the run produced
    #: no audit activity at all — the physical cold-boot dump reads DRAM
    #: below every checker, so there is nothing for a monitor to see.
    detection: Optional[Dict[str, Any]] = None

    @property
    def detected(self) -> bool:
        return bool(self.detection and self.detection["detected"])

    @property
    def detection_latency(self) -> Optional[float]:
        """Cycles from first probe to first sentinel flag (None when
        the attack was never detected)."""
        if not self.detection:
            return None
        return self.detection["latency_cycles"]


def _pad_lines(data: bytes, line_bytes: int) -> np.ndarray:
    n_lines = -(-len(data) // line_bytes)
    buf = bytearray(data) + bytes(n_lines * line_bytes - len(data))
    return np.frombuffer(bytes(buf), dtype=np.uint8).reshape(n_lines, line_bytes)


@contextlib.contextmanager
def _observed_scope(
    name: str, **scoped_kw: Any
) -> Iterator[Tuple[Any, SecuritySentinel]]:
    """A telemetry scope with the streaming sentinel attached.

    Records are stamped with the attack's name as origin and every
    ledger append is observed *online* — detection latency is measured
    as the run unfolds, never reconstructed from the final ledger."""
    with telemetry.scoped(**scoped_kw) as scope:
        scope.audit.set_origin(name)
        sentinel = SecuritySentinel().attach(scope.audit)
        try:
            yield scope, sentinel
        finally:
            sentinel.detach()


def _detection(sentinel: SecuritySentinel, name: str) -> Optional[Dict[str, Any]]:
    """The sentinel's verdict for one attack (None: nothing observed)."""
    report = sentinel.report(name)
    if report.first_probe_cycle is None:
        return None
    return report.to_dict()


# ----------------------------------------------------------------------
# 1. Compromised NPU reads CPU-side secure memory through DMA
# ----------------------------------------------------------------------
def attack_dma_steal_secure_memory(protection: str = "none") -> AttackResult:
    """A normal-world NPU task DMAs the TrustZone secure region.

    The blocked verdict is corroborated by the telemetry registry: the
    attempt must show up as ``mmu.guarder.denials`` — the same counter an
    operator would alert on in production.
    """
    with _observed_scope(
        "dma_steal_secure_memory", trace=False, flow=True
    ) as (scope, sentinel):
        config = NPUConfig.paper_default()
        memmap = MemoryMap.default()
        dram = DRAMModel(config.dram_bytes_per_cycle)
        secure = memmap.region("secure")
        dram.write(secure.range.base, SECRET)

        if protection == "none":
            controller = NoProtection()
        else:
            controller = NPUGuarder()
            install_platform_checking(controller, memmap)
            # The *driver* can map anything it likes into a translation
            # register - the checking registers are what stop it.
            controller.set_translation_register(
                0, vbase=secure.range.base, pbase=secure.range.base, size=4096
            )

        spad = Scratchpad(config.spad_lines, config.spad_line_bytes)
        dma = DMAEngine(
            config, controller, dram, scratchpad=spad, functional=True
        )
        request = DmaRequest(
            vaddr=secure.range.base,
            size=len(SECRET),
            is_write=False,
            world=World.NORMAL,
            stream="exfil",
        )
        transfer = SpadTransfer(request=request, spad_line=0, lines=3)
        try:
            dma.execute(transfer)
        except SecurityViolation as exc:
            denials = scope.metrics.get("mmu.guarder.denials", 0)
            return AttackResult(
                "dma_steal_secure_memory", protection, succeeded=False,
                blocked_by=type(exc).__name__,
                detail=f"{exc} [guarder.denials={denials}]",
                audit_records=scope.audit.records,
                detection=_detection(sentinel, "dma_steal_secure_memory"),
            )
        stolen = spad.raw_peek(0, 3).reshape(-1).tobytes()[: len(SECRET)]
        return AttackResult(
            "dma_steal_secure_memory", protection, succeeded=stolen == SECRET,
            detail=f"read {stolen[:16]!r}...",
            audit_records=scope.audit.records,
            detection=_detection(sentinel, "dma_steal_secure_memory"),
        )


# ----------------------------------------------------------------------
# 2. LeftoverLocals: residue theft on the exclusive (local) scratchpad
# ----------------------------------------------------------------------
def attack_leftoverlocals(protection: str = "none") -> AttackResult:
    """A non-secure task reads scratchpad lines a secure task left behind.

    On the Normal NPU (no ID bits, no scrub) the victim's data is simply
    still there — the LeftoverLocals disclosure.  Under sNPU the read
    faults on the ID mismatch even *before* any scrub happens.
    """
    with _observed_scope("leftoverlocals", trace=False) as (scope, sentinel):
        config = NPUConfig.paper_default()
        mode = (
            SpadIsolationMode.ID_BASED
            if protection == "snpu"
            else SpadIsolationMode.NONE
        )
        spad = Scratchpad(config.spad_lines, config.spad_line_bytes, mode=mode)

        payload = _pad_lines(SECRET, config.spad_line_bytes)
        # Victim (secure) writes its model tiles and finishes WITHOUT an
        # explicit flush (the attack window).
        spad.write(100, payload, World.SECURE)

        try:
            leaked = spad.read(100, payload.shape[0], World.NORMAL)
        except ScratchpadIsolationError as exc:
            violations = scope.metrics.get("npu.scratchpad.local.violations", 0)
            return AttackResult(
                "leftoverlocals", protection, succeeded=False,
                blocked_by=type(exc).__name__,
                detail=f"{exc} [scratchpad.violations={violations}]",
                audit_records=scope.audit.records,
                detection=_detection(sentinel, "leftoverlocals"),
            )
        stolen = leaked.reshape(-1).tobytes()[: len(SECRET)]
        return AttackResult(
            "leftoverlocals", protection, succeeded=stolen == SECRET,
            detail=f"recovered {stolen[:16]!r}...",
            audit_records=scope.audit.records,
            detection=_detection(sentinel, "leftoverlocals"),
        )


# ----------------------------------------------------------------------
# 3. Spatial co-tenant theft on the shared (global) scratchpad
# ----------------------------------------------------------------------
def attack_global_spad_cotenant(protection: str = "none") -> AttackResult:
    """A concurrently running non-secure core reads (and overwrites) the
    secure task's lines in the shared scratchpad."""
    with _observed_scope(
        "global_spad_cotenant", trace=False
    ) as (scope, sentinel):
        config = NPUConfig.paper_default()
        mode = (
            SpadIsolationMode.ID_BASED
            if protection == "snpu"
            else SpadIsolationMode.NONE
        )
        spad = Scratchpad(4096, config.spad_line_bytes, mode=mode, shared=True)
        payload = _pad_lines(SECRET, config.spad_line_bytes)
        spad.write(0, payload, World.SECURE)

        try:
            leaked = spad.read(0, payload.shape[0], World.NORMAL)
            # Also attempt to corrupt the victim's data.
            spad.write(0, np.zeros_like(payload), World.NORMAL)
        except ScratchpadIsolationError as exc:
            violations = scope.metrics.get(
                "npu.scratchpad.global.violations", 0
            )
            return AttackResult(
                "global_spad_cotenant", protection, succeeded=False,
                blocked_by=type(exc).__name__,
                detail=f"{exc} [scratchpad.violations={violations}]",
                audit_records=scope.audit.records,
                detection=_detection(sentinel, "global_spad_cotenant"),
            )
        stolen = leaked.reshape(-1).tobytes()[: len(SECRET)]
        return AttackResult(
            "global_spad_cotenant", protection, succeeded=stolen == SECRET,
            detail="read and overwrote secure lines",
            audit_records=scope.audit.records,
            detection=_detection(sentinel, "global_spad_cotenant"),
        )


# ----------------------------------------------------------------------
# 4. NoC route hijack
# ----------------------------------------------------------------------
def attack_noc_route_hijack(protection: str = "none") -> AttackResult:
    """A compromised scheduler routes a secure core's intermediate
    results to a core the attacker controls (Fig. 7)."""
    with _observed_scope(
        "noc_route_hijack", trace=False, flow=True
    ) as (scope, sentinel):
        config = NPUConfig.paper_default()
        mesh = Mesh(2, 2)
        policy = (
            NoCPolicy.PEEPHOLE if protection == "snpu"
            else NoCPolicy.UNAUTHORIZED
        )
        fabric = NoCFabric(
            mesh, policy=policy, hop_cycles=config.noc_hop_cycles,
            flit_bytes=config.noc_flit_bytes,
        )
        # Core 0 runs the secure producer; core 3 SHOULD be the secure
        # consumer, but the malicious scheduler put the attacker's task
        # there.
        fabric.routers[0].set_world(World.SECURE, issuer=World.SECURE)
        # attacker's core 3 stays NORMAL.
        try:
            fabric.transfer(0, 3, nbytes=len(SECRET))
        except NoCAuthError as exc:
            rejected = scope.metrics.get("noc.fabric.packets_rejected", 0)
            return AttackResult(
                "noc_route_hijack", protection, succeeded=False,
                blocked_by=type(exc).__name__,
                detail=f"{exc} [noc.packets_rejected={rejected}]",
                audit_records=scope.audit.records,
                detection=_detection(sentinel, "noc_route_hijack"),
            )
        # The verdict comes from the fabric-wide registry metric, not a
        # router's private stats object.
        received = scope.metrics.get("noc.fabric.packets_received", 0)
        return AttackResult(
            "noc_route_hijack", protection, succeeded=received > 0,
            detail=f"attacker core received {received} packet(s)",
            audit_records=scope.audit.records,
            detection=_detection(sentinel, "noc_route_hijack"),
        )


# ----------------------------------------------------------------------
# 5. Untrusted driver programs secure context
# ----------------------------------------------------------------------
def attack_driver_sets_secure_context(protection: str = "snpu") -> AttackResult:
    """The normal-world driver tries to flip a core secure and rewrite the
    checking registers (so its task could pass the Guarder)."""
    with _observed_scope(
        "driver_sets_secure_context", trace=False
    ) as (scope, sentinel):
        config = NPUConfig.paper_default()
        guarder = NPUGuarder()
        core = NPUCore(config, guarder, DRAMModel(config.dram_bytes_per_cycle))
        try:
            core.set_world(World.SECURE, issuer=World.NORMAL)
            guarder.set_checking_register(
                0,
                AddressRange(0, 1 << 40),
                Permission.RW,
                World.NORMAL,
                issuer=World.NORMAL,
            )
        except PrivilegeError as exc:
            return AttackResult(
                "driver_sets_secure_context", protection, succeeded=False,
                blocked_by=type(exc).__name__, detail=str(exc),
                audit_records=scope.audit.records,
                detection=_detection(sentinel, "driver_sets_secure_context"),
            )
        return AttackResult(
            "driver_sets_secure_context", protection,
            succeeded=core.world is World.SECURE,
            detail="driver obtained a secure core",
            audit_records=scope.audit.records,
            detection=_detection(sentinel, "driver_sets_secure_context"),
        )


# ----------------------------------------------------------------------
# 6. Tampered task code caught by measurement
# ----------------------------------------------------------------------
def attack_tampered_task_code(protection: str = "snpu") -> AttackResult:
    """The driver swaps the verified program for a tampered one."""
    from repro.driver.compiler import TilingCompiler

    with _observed_scope(
        "tampered_task_code", trace=False
    ) as (scope, sentinel):
        config = NPUConfig.paper_default()
        compiler = TilingCompiler(config)
        program = compiler.compile(synthetic_mlp(), world=World.SECURE)
        expected = program.measurement()  # what the user signed off on

        # The attacker inflates one layer (e.g., to exfiltrate more data).
        tampered = compiler.compile(
            synthetic_mlp(features=512), world=World.SECURE
        )
        tampered.task_name = program.task_name

        memmap = MemoryMap.default()
        guarder = NPUGuarder()
        core = NPUCore(config, guarder, DRAMModel(config.dram_bytes_per_cycle))
        monitor = NPUMonitor(memmap, guarder, [core])
        monitor.boot()
        try:
            monitor.submit(tampered, expected)
        except MeasurementError as exc:
            return AttackResult(
                "tampered_task_code", protection, succeeded=False,
                blocked_by=type(exc).__name__, detail=str(exc),
                audit_records=scope.audit.records,
                detection=_detection(sentinel, "tampered_task_code"),
            )
        return AttackResult(
            "tampered_task_code", protection, succeeded=True,
            detail="tampered program entered the secure queue",
            audit_records=scope.audit.records,
            detection=_detection(sentinel, "tampered_task_code"),
        )


# ----------------------------------------------------------------------
# 7. Wrong topology caught by route integrity
# ----------------------------------------------------------------------
def attack_wrong_topology(protection: str = "snpu") -> AttackResult:
    """A 2x2 secure task is scheduled onto a 1x4 line of cores (§IV-B)."""
    from repro.driver.compiler import TilingCompiler

    with _observed_scope("wrong_topology", trace=False) as (scope, sentinel):
        config = NPUConfig.paper_default()
        compiler = TilingCompiler(config)
        program = compiler.compile(synthetic_mlp(), world=World.SECURE)
        program.topology = (2, 2)

        memmap = MemoryMap.default()
        guarder = NPUGuarder()
        dram = DRAMModel(config.dram_bytes_per_cycle)
        mesh = Mesh(2, 5)
        cores = [NPUCore(config, guarder, dram, core_id=i) for i in range(10)]
        monitor = NPUMonitor(memmap, guarder, cores, mesh)
        monitor.boot()
        monitor.submit(program, program.measurement())
        try:
            monitor.schedule_next([0, 1, 2, 3])  # a 1x4 row, not 2x2
        except RouteIntegrityError as exc:
            return AttackResult(
                "wrong_topology", protection, succeeded=False,
                blocked_by=type(exc).__name__, detail=str(exc),
                audit_records=scope.audit.records,
                detection=_detection(sentinel, "wrong_topology"),
            )
        return AttackResult(
            "wrong_topology", protection, succeeded=True,
            detail="task loaded on an unexpected topology",
            audit_records=scope.audit.records,
            detection=_detection(sentinel, "wrong_topology"),
        )


# ----------------------------------------------------------------------
# 8. Physical attack: cold-boot / bus-snoop DRAM dump (§VII composition)
# ----------------------------------------------------------------------
def attack_cold_boot_dram_dump(protection: str = "none") -> AttackResult:
    """A physical attacker dumps DRAM after the NPU stored a secure tile.

    sNPU itself excludes physical attacks from its threat model (§III-B)
    and composes with memory encryption (§VII); ``protection="snpu"`` here
    means sNPU + the memory encryption engine.
    """
    from repro.memory.encryption import MemoryEncryptionEngine

    with _observed_scope(
        "cold_boot_dram_dump", trace=False
    ) as (scope, sentinel):
        config = NPUConfig.paper_default()
        dram = DRAMModel(config.dram_bytes_per_cycle)
        spad = Scratchpad(256, config.spad_line_bytes)
        encryption = (
            MemoryEncryptionEngine(b"device-unique-key", dram)
            if protection == "snpu"
            else None
        )
        dma = DMAEngine(
            config, NoProtection(), dram,
            scratchpad=spad, functional=True, encryption=encryption,
        )
        payload = _pad_lines(SECRET, config.spad_line_bytes)
        spad.write(0, payload, World.SECURE)
        out = DmaRequest(
            vaddr=0x8000_0000, size=payload.size, is_write=True,
            world=World.SECURE,
        )
        dma.execute(
            SpadTransfer(request=out, spad_line=0, lines=payload.shape[0])
        )

        # The physical dump reads raw DRAM, below every access-control check.
        dump = dram.read(0x8000_0000, payload.size)
        if SECRET in dump:
            return AttackResult(
                "cold_boot_dram_dump", protection, succeeded=True,
                detail="plaintext model recovered from the DRAM dump",
                audit_records=scope.audit.records,
                detection=_detection(sentinel, "cold_boot_dram_dump"),
            )
        return AttackResult(
            "cold_boot_dram_dump", protection, succeeded=False,
            blocked_by="MemoryEncryptionEngine",
            detail="dump contains only ciphertext",
            audit_records=scope.audit.records,
            detection=_detection(sentinel, "cold_boot_dram_dump"),
        )


#: name -> attack callable; each takes protection in {"none", "snpu"}.
ALL_ATTACKS: Dict[str, Callable[[str], AttackResult]] = {
    "dma_steal_secure_memory": attack_dma_steal_secure_memory,
    "leftoverlocals": attack_leftoverlocals,
    "global_spad_cotenant": attack_global_spad_cotenant,
    "noc_route_hijack": attack_noc_route_hijack,
    "driver_sets_secure_context": attack_driver_sets_secure_context,
    "tampered_task_code": attack_tampered_task_code,
    "wrong_topology": attack_wrong_topology,
    "cold_boot_dram_dump": attack_cold_boot_dram_dump,
}


#: Expected audit-ledger evidence when sNPU blocks each attack:
#: ``(denial kind, denied world, flow ID required)``.  ``None`` means the
#: attack has no audit expectation — the cold-boot dump is a physical
#: attack below every access-control check, so by design no checker sees
#: it and nothing is ledgered.
EXPECTED_AUDIT: Dict[str, Optional[Tuple[str, str, bool]]] = {
    "dma_steal_secure_memory": ("guarder.deny", "NORMAL", True),
    "leftoverlocals": ("spad.deny", "NORMAL", False),
    "global_spad_cotenant": ("spad.deny", "NORMAL", False),
    # Core 0 (the secure producer) issues the hijacked stream, so the
    # denied packet carries the SECURE world tag.
    "noc_route_hijack": ("noc.deny", "SECURE", True),
    "driver_sets_secure_context": ("privilege.deny", "NORMAL", False),
    "tampered_task_code": ("monitor.submit", "SECURE", False),
    "wrong_topology": ("monitor.schedule", "SECURE", False),
    "cold_boot_dram_dump": None,
}


def assert_expected_audit(result: AttackResult) -> None:
    """Corroborate a blocked verdict against the attack's audit records.

    Raises :class:`AssertionError` unless the ledger carries at least one
    denial of the expected kind, stamped with the expected world, and —
    where the denial judged a tracked request — a flow ID.
    """
    expected = EXPECTED_AUDIT.get(result.name)
    if expected is None:
        return
    kind, world, needs_flow = expected
    matches = [
        r for r in result.audit_records
        if r["kind"] == kind and r["decision"] == "deny"
        and r["world"] == world
    ]
    assert matches, (
        f"{result.name}: blocked by {result.blocked_by} but the audit "
        f"ledger has no ({kind}, deny, {world}) record; "
        f"ledger kinds: {sorted({r['kind'] for r in result.audit_records})}"
    )
    if needs_flow:
        assert any(r["flow"] is not None for r in matches), (
            f"{result.name}: denial records lack a flow ID"
        )


def assert_detection_corroborated(result: AttackResult) -> None:
    """Corroborate the streaming sentinel against the final ledger.

    For every attack with an audit expectation the sentinel must have
    raised a flag *while the attack ran*, with a finite non-negative
    detection latency, and its cycle stamps must agree with the ledger:
    first probe = the first appended record, first flag = the first
    appended denial.  An attack with no audit expectation (the physical
    cold-boot dump) must conversely have raised nothing — a detector
    that flags the undetectable is lying about its vantage point.
    """
    if EXPECTED_AUDIT.get(result.name) is None:
        assert not result.detected, (
            f"{result.name}: the sentinel flagged an attack that by "
            f"design produces no audit activity"
        )
        return
    det = result.detection
    assert det is not None and det["detected"], (
        f"{result.name}: blocked but the streaming sentinel never flagged"
    )
    latency = det["latency_cycles"]
    assert latency is not None and latency >= 0 and math.isfinite(latency), (
        f"{result.name}: detection latency {latency!r} is not finite"
    )
    records = result.audit_records
    assert det["first_probe_cycle"] == records[0]["cycle"], (
        f"{result.name}: sentinel first-probe cycle "
        f"{det['first_probe_cycle']} != first ledger record cycle "
        f"{records[0]['cycle']}"
    )
    first_deny = next(
        (r for r in records if r["decision"] == "deny"), None
    )
    assert first_deny is not None, f"{result.name}: ledger has no denial"
    assert det["first_flag_cycle"] == first_deny["cycle"], (
        f"{result.name}: sentinel first-flag cycle "
        f"{det['first_flag_cycle']} != first ledger denial cycle "
        f"{first_deny['cycle']}"
    )


def run_all_attacks(protection: str) -> List[AttackResult]:
    """Run every attack against one protection level.

    Under ``protection="snpu"`` every blocked verdict is corroborated
    against the audit ledger via :func:`assert_expected_audit` — a
    mechanism cannot claim a block without leaving the matching evidence
    — and the streaming sentinel's detection timeline is corroborated
    against the same ledger via :func:`assert_detection_corroborated`.
    """
    results = [attack(protection) for attack in ALL_ATTACKS.values()]
    if protection == "snpu":
        for result in results:
            if not result.succeeded:
                assert_expected_audit(result)
                assert_detection_corroborated(result)
    return results
